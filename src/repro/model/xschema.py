"""Extended relation schemas (Definition 2 of the paper).

An extended relation schema is an ordered attribute sequence partitioned
into a *real schema* and a *virtual schema*, plus a finite set of binding
patterns.  Virtual attributes exist only at the schema level: tuples are
defined over the real schema only (Definition 3), and realization operators
(Section 3.1.3) turn virtual attributes into real ones.

This module also implements the coordinate arithmetic of Definition 4
(``delta_R``): because tuples only store values for real attributes, the
value of the i-th schema attribute lives at the position equal to the
number of real attributes among the first i attributes.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import (
    BindingPatternError,
    DuplicateAttributeError,
    SchemaError,
    UnknownAttributeError,
    VirtualAttributeError,
)
from repro.model.attributes import Attribute
from repro.model.binding import BindingPattern
from repro.model.schema import RelationSchema
from repro.model.types import DataType, coerce_value

__all__ = ["ExtendedRelationSchema"]


class ExtendedRelationSchema:
    """An extended relation schema: attributes + real/virtual partition + BPs.

    Instances are immutable; the algebra operators derive new schemas from
    existing ones (see the ``project``/``rename``/``realize``/``join``
    methods, which implement the schema rows of Table 3).

    Parameters
    ----------
    name:
        The relation symbol (``contacts``, ``cameras``, ...) or None for
        anonymous schemas produced by query operators.
    attributes:
        All attributes in schema order (real and virtual interleaved as
        declared).
    virtual:
        Names of the virtual attributes (``virtualSchema(R)``).
    binding_patterns:
        Binding patterns associated with the schema (``BP(R)``); each must
        satisfy the restrictions of Definition 2 against this schema.
    """

    __slots__ = (
        "name",
        "_attributes",
        "_index",
        "_virtual",
        "_binding_patterns",
        "_real_positions",
        "_real_attributes",
    )

    def __init__(
        self,
        name: str | None,
        attributes: Iterable[Attribute],
        virtual: Iterable[str] = (),
        binding_patterns: Iterable[BindingPattern] = (),
    ):
        attrs = tuple(attributes)
        index: dict[str, int] = {}
        for position, attribute in enumerate(attrs):
            if not isinstance(attribute, Attribute):
                raise SchemaError(f"not an Attribute: {attribute!r}")
            if attribute.name in index:
                raise DuplicateAttributeError(
                    f"duplicate attribute {attribute.name!r} in schema {name!r}"
                )
            index[attribute.name] = position
        virtual_set = frozenset(virtual)
        unknown = virtual_set - set(index)
        if unknown:
            raise UnknownAttributeError(sorted(unknown)[0], name)

        # delta_R of Definition 4: position of each real attribute inside
        # the value tuple (which stores real attributes only, in order).
        real_positions: dict[str, int] = {}
        real_attributes: list[Attribute] = []
        for attribute in attrs:
            if attribute.name not in virtual_set:
                real_positions[attribute.name] = len(real_attributes)
                real_attributes.append(attribute)

        self.name = name
        self._attributes = attrs
        self._index = index
        self._virtual = virtual_set
        self._real_positions = real_positions
        self._real_attributes = tuple(real_attributes)

        bps = tuple(binding_patterns)
        for bp in bps:
            self._check_binding_pattern(bp)
        self._binding_patterns = bps

    def _check_binding_pattern(self, bp: BindingPattern) -> None:
        """Enforce the restrictions of Definition 2."""
        if bp.service_attribute not in self._index:
            raise BindingPatternError(
                f"binding pattern {bp}: service attribute "
                f"{bp.service_attribute!r} not in schema {self.name!r}"
            )
        if bp.service_attribute in self._virtual:
            raise BindingPatternError(
                f"binding pattern {bp}: service attribute "
                f"{bp.service_attribute!r} must be a real attribute"
            )
        missing_inputs = bp.input_names - set(self._index)
        if missing_inputs:
            raise BindingPatternError(
                f"binding pattern {bp}: input attributes {sorted(missing_inputs)} "
                f"not in schema {self.name!r}"
            )
        not_virtual_outputs = bp.output_names - self._virtual
        if not_virtual_outputs:
            raise BindingPatternError(
                f"binding pattern {bp}: output attributes "
                f"{sorted(not_virtual_outputs)} must be virtual attributes "
                f"of schema {self.name!r}"
            )
        for input_name in bp.input_names:
            declared = self._attributes[self._index[input_name]].dtype
            expected = bp.prototype.input_schema.dtype(input_name)
            if declared is not expected:
                raise BindingPatternError(
                    f"binding pattern {bp}: attribute {input_name!r} has type "
                    f"{declared.value} but prototype expects {expected.value}"
                )
        for output_name in bp.output_names:
            declared = self._attributes[self._index[output_name]].dtype
            expected = bp.prototype.output_schema.dtype(output_name)
            if declared is not expected:
                raise BindingPatternError(
                    f"binding pattern {bp}: attribute {output_name!r} has type "
                    f"{declared.value} but prototype returns {expected.value}"
                )

    # -- basic accessors ------------------------------------------------------

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """All attributes in schema order."""
        return self._attributes

    @property
    def names(self) -> tuple[str, ...]:
        """All attribute names in schema order."""
        return tuple(a.name for a in self._attributes)

    @property
    def name_set(self) -> frozenset[str]:
        """``schema(R)`` as a set."""
        return frozenset(self._index)

    @property
    def arity(self) -> int:
        """``type(R)``."""
        return len(self._attributes)

    @property
    def real_names(self) -> frozenset[str]:
        """``realSchema(R)`` as a set."""
        return frozenset(self._real_positions)

    @property
    def virtual_names(self) -> frozenset[str]:
        """``virtualSchema(R)`` as a set."""
        return self._virtual

    @property
    def real_attributes(self) -> tuple[Attribute, ...]:
        """Real attributes in schema order (the tuple layout)."""
        return self._real_attributes

    @property
    def binding_patterns(self) -> tuple[BindingPattern, ...]:
        """``BP(R)``."""
        return self._binding_patterns

    def attribute(self, name: str) -> Attribute:
        try:
            return self._attributes[self._index[name]]
        except KeyError:
            raise UnknownAttributeError(name, self.name) from None

    def dtype(self, name: str) -> DataType:
        return self.attribute(name).dtype

    def is_virtual(self, name: str) -> bool:
        if name not in self._index:
            raise UnknownAttributeError(name, self.name)
        return name in self._virtual

    def is_real(self, name: str) -> bool:
        return not self.is_virtual(name)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def binding_pattern(self, prototype_name: str, service_attribute: str | None = None) -> BindingPattern:
        """Look up a binding pattern by prototype name (and, if ambiguous,
        service attribute)."""
        matches = [
            bp
            for bp in self._binding_patterns
            if bp.prototype.name == prototype_name
            and (service_attribute is None or bp.service_attribute == service_attribute)
        ]
        if not matches:
            raise BindingPatternError(
                f"schema {self.name!r} has no binding pattern for prototype "
                f"{prototype_name!r}"
            )
        if len(matches) > 1:
            raise BindingPatternError(
                f"ambiguous binding pattern for prototype {prototype_name!r} "
                f"in schema {self.name!r}; specify the service attribute"
            )
        return matches[0]

    # -- tuple-level helpers (Definitions 3 and 4) ----------------------------

    def real_position(self, name: str) -> int:
        """``delta_R``: the coordinate of real attribute ``name`` in tuples."""
        if name not in self._index:
            raise UnknownAttributeError(name, self.name)
        if name in self._virtual:
            raise VirtualAttributeError(
                f"attribute {name!r} is virtual in schema {self.name!r}: "
                "tuples cannot be projected onto virtual attributes"
            )
        return self._real_positions[name]

    def project_tuple(self, values: tuple, names: Sequence[str]) -> tuple:
        """``t[X]`` for ``X ⊆ realSchema(R)`` (Definition 4)."""
        return tuple(values[self.real_position(n)] for n in names)

    def tuple_value(self, values: tuple, name: str) -> object:
        """``t[A]`` for a single real attribute ``A``."""
        return values[self.real_position(name)]

    def tuple_from_mapping(self, mapping: Mapping[str, object]) -> tuple:
        """Build a value tuple over the real schema from name→value.

        Virtual attributes must be absent (they have no value); missing real
        attributes raise.  Values are coerced into their domains.
        """
        virtual_given = set(mapping) & self._virtual
        if virtual_given:
            raise VirtualAttributeError(
                f"virtual attributes {sorted(virtual_given)} cannot be given "
                f"values in tuples of schema {self.name!r}"
            )
        extra = set(mapping) - set(self._index)
        if extra:
            raise UnknownAttributeError(sorted(extra)[0], self.name)
        values = []
        for attribute in self._real_attributes:
            if attribute.name not in mapping:
                raise SchemaError(
                    f"missing value for real attribute {attribute.name!r} "
                    f"of schema {self.name!r}"
                )
            values.append(coerce_value(mapping[attribute.name], attribute.dtype))
        return tuple(values)

    def mapping_from_tuple(self, values: tuple) -> dict[str, object]:
        """Name→value mapping for a value tuple (real attributes only)."""
        if len(values) != len(self._real_attributes):
            raise SchemaError(
                f"tuple of length {len(values)} does not fit the real schema "
                f"of {self.name!r} (|realSchema| = {len(self._real_attributes)})"
            )
        return {a.name: v for a, v in zip(self._real_attributes, values)}

    def validate_tuple(self, values: tuple) -> tuple:
        """Check arity and types of a value tuple; returns the coerced tuple."""
        if len(values) != len(self._real_attributes):
            raise SchemaError(
                f"tuple of length {len(values)} does not fit the real schema "
                f"of {self.name!r} (|realSchema| = {len(self._real_attributes)})"
            )
        return tuple(
            coerce_value(v, a.dtype) for a, v in zip(self._real_attributes, values)
        )

    # -- binding pattern propagation ------------------------------------------

    def valid_binding_patterns(
        self, candidates: Iterable[BindingPattern]
    ) -> tuple[BindingPattern, ...]:
        """Filter ``candidates`` to those valid against this schema.

        This is the propagation step every operator of Table 3 performs:
        binding patterns whose service attribute disappeared or became
        virtual, whose inputs left the schema, or whose outputs are no
        longer virtual, are silently dropped.
        """
        kept = []
        for bp in candidates:
            try:
                self._check_binding_pattern(bp)
            except BindingPatternError:
                continue
            if bp not in kept:
                kept.append(bp)
        return tuple(kept)

    # -- schema derivations used by the algebra (Table 3) ----------------------

    def project(self, names: Sequence[str]) -> "ExtendedRelationSchema":
        """Schema of ``pi_Y(r)`` (Table 3a): keep exactly ``names``.

        The paper treats ``schema(S) = Y`` as a set; we order the result
        by the *requested* order, which is what SELECT lists and rule
        heads expect.  Binding patterns that remain valid are kept.
        """
        keep = set(names)
        unknown = keep - set(self._index)
        if unknown:
            raise UnknownAttributeError(sorted(unknown)[0], self.name)
        attrs = [self._attributes[self._index[name]] for name in names]
        schema = ExtendedRelationSchema(
            None, attrs, self._virtual & keep, ()
        )
        return schema._with_binding_patterns(self._binding_patterns)

    def rename(self, old: str, new: str) -> "ExtendedRelationSchema":
        """Schema of ``rho_{old->new}(r)`` (Table 3c)."""
        if old not in self._index:
            raise UnknownAttributeError(old, self.name)
        if new in self._index:
            raise SchemaError(
                f"cannot rename {old!r} to {new!r}: {new!r} already in schema"
            )
        attrs = [
            a.renamed(new) if a.name == old else a for a in self._attributes
        ]
        virtual = {new if n == old else n for n in self._virtual}
        schema = ExtendedRelationSchema(None, attrs, virtual, ())
        candidates = [bp.renamed(old, new) for bp in self._binding_patterns]
        return schema._with_binding_patterns(candidates)

    def realize(self, names: Iterable[str]) -> "ExtendedRelationSchema":
        """Schema after realization of virtual attributes ``names``
        (assignment, Table 3e, or invocation outputs, Table 3f)."""
        to_realize = set(names)
        for n in to_realize:
            if n not in self._index:
                raise UnknownAttributeError(n, self.name)
            if n not in self._virtual:
                raise VirtualAttributeError(
                    f"attribute {n!r} is already real in schema {self.name!r}"
                )
        schema = ExtendedRelationSchema(
            None, self._attributes, self._virtual - to_realize, ()
        )
        return schema._with_binding_patterns(self._binding_patterns)

    def join(self, other: "ExtendedRelationSchema") -> "ExtendedRelationSchema":
        """Schema of the natural join (Table 3d).

        * ``schema(S) = schema(R1) ∪ schema(R2)`` (R1's order, then R2's
          attributes not already present);
        * an attribute is real in S iff it is real in at least one operand
          (implicit realization);
        * binding patterns of both operands are propagated, dropping those
          whose outputs are no longer virtual.
        """
        attrs = list(self._attributes)
        for attribute in other._attributes:
            if attribute.name in self._index:
                mine = self._attributes[self._index[attribute.name]]
                if mine.dtype is not attribute.dtype:
                    raise SchemaError(
                        f"join attribute {attribute.name!r} has type "
                        f"{mine.dtype.value} in {self.name!r} but "
                        f"{attribute.dtype.value} in {other.name!r} (URSA violation)"
                    )
            else:
                attrs.append(attribute)
        virtual = set()
        for attribute in attrs:
            n = attribute.name
            in_self = n in self._index
            in_other = n in other._index
            virtual_here = (not in_self or n in self._virtual) and (
                not in_other or n in other._virtual
            )
            if virtual_here:
                virtual.add(n)
        schema = ExtendedRelationSchema(None, attrs, virtual, ())
        candidates = list(self._binding_patterns) + list(other._binding_patterns)
        return schema._with_binding_patterns(candidates)

    def _with_binding_patterns(
        self, candidates: Iterable[BindingPattern]
    ) -> "ExtendedRelationSchema":
        """Copy of this schema keeping only the valid candidates."""
        return ExtendedRelationSchema(
            self.name,
            self._attributes,
            self._virtual,
            self.valid_binding_patterns(candidates),
        )

    def with_name(self, name: str | None) -> "ExtendedRelationSchema":
        """Copy of this schema with another relation symbol."""
        return ExtendedRelationSchema(
            name, self._attributes, self._virtual, self._binding_patterns
        )

    def real_relation_schema(self) -> RelationSchema:
        """The plain relation schema of the real attributes (tuple layout)."""
        return RelationSchema(self._real_attributes)

    # -- compatibility and equality --------------------------------------------

    def compatible(self, other: "ExtendedRelationSchema") -> bool:
        """Set-operator compatibility: same attributes/partition/BPs,
        ignoring the relation symbol."""
        return (
            self._attributes == other._attributes
            and self._virtual == other._virtual
            and set(self._binding_patterns) == set(other._binding_patterns)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExtendedRelationSchema):
            return NotImplemented
        return self.name == other.name and self.compatible(other)

    def __hash__(self) -> int:
        return hash((self.name, self._attributes, self._virtual))

    def describe(self) -> str:
        """Render in the paper's DDL style (Table 2)."""
        lines = []
        for attribute in self._attributes:
            suffix = " VIRTUAL" if attribute.name in self._virtual else ""
            lines.append(f"  {attribute.name} {attribute.dtype.value}{suffix}")
        body = ",\n".join(lines)
        text = f"EXTENDED RELATION {self.name or '<anonymous>'} (\n{body}\n)"
        if self._binding_patterns:
            bps = ",\n".join(f"  {bp.describe()}" for bp in self._binding_patterns)
            text += f"\nUSING BINDING PATTERNS (\n{bps}\n)"
        return text

    def __repr__(self) -> str:
        names = ", ".join(
            a.name + ("*" if a.name in self._virtual else "")
            for a in self._attributes
        )
        return f"ExtendedRelationSchema({self.name!r}: {names})"
