"""Binding patterns (Section 2.2, Definition 2).

A binding pattern is the relationship between service references, virtual
attributes and prototypes.  It is a pair ``(prototype_bp, service_bp)``:

* ``prototype_bp``: the prototype to invoke,
* ``service_bp``: a *real* attribute of the extended relation schema whose
  value, at the tuple level, is a service reference.

Against a given extended relation schema ``R`` it must satisfy:

* ``service_bp ∈ realSchema(R)``,
* ``schema(Input_prototype) ⊆ schema(R)`` (inputs may be real or virtual),
* ``schema(Output_prototype) ⊆ virtualSchema(R)`` (outputs are virtual).

Validity is checked by the schema (see
:meth:`repro.model.xschema.ExtendedRelationSchema`), not here, because the
same binding pattern object may be valid for one schema and invalid for a
derived one — the operators of Table 3 silently drop binding patterns that
their output schema invalidates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BindingPatternError
from repro.model.prototypes import Prototype

__all__ = ["BindingPattern"]


@dataclass(frozen=True)
class BindingPattern:
    """A pair (prototype, service-reference attribute name)."""

    prototype: Prototype
    service_attribute: str

    def __post_init__(self) -> None:
        if not self.service_attribute:
            raise BindingPatternError("binding pattern needs a service attribute")
        if self.service_attribute in self.prototype.input_names:
            raise BindingPatternError(
                f"service attribute {self.service_attribute!r} cannot also be "
                f"an input of prototype {self.prototype.name!r}"
            )
        if self.service_attribute in self.prototype.output_names:
            raise BindingPatternError(
                f"service attribute {self.service_attribute!r} cannot also be "
                f"an output of prototype {self.prototype.name!r}"
            )

    @property
    def active(self) -> bool:
        """``active(bp)``: true iff the associated prototype is active."""
        return self.prototype.active

    @property
    def input_names(self) -> frozenset[str]:
        """Input attribute names of the associated prototype."""
        return self.prototype.input_names

    @property
    def output_names(self) -> frozenset[str]:
        """Output attribute names of the associated prototype."""
        return self.prototype.output_names

    @property
    def referenced_names(self) -> frozenset[str]:
        """All schema attributes this binding pattern depends on."""
        return self.input_names | self.output_names | {self.service_attribute}

    def renamed(self, old: str, new: str) -> "BindingPattern":
        """Binding pattern after renaming attribute ``old`` to ``new``.

        Only the service-reference attribute can be tracked through a
        renaming (Table 3c): prototype input/output schemas are fixed by the
        prototype declaration, so renaming one of *those* attributes
        invalidates the pattern — the caller (the renaming operator) is
        responsible for dropping it in that case.
        """
        if self.service_attribute == old:
            return BindingPattern(self.prototype, new)
        return self

    def describe(self) -> str:
        """Render in the paper's DDL style:
        ``sendMessage[messenger] ( address, text ) : ( sent )``."""
        inputs = ", ".join(self.prototype.input_schema.names)
        outputs = ", ".join(self.prototype.output_schema.names)
        return (
            f"{self.prototype.name}[{self.service_attribute}] "
            f"( {inputs} ) : ( {outputs} )"
        )

    def __str__(self) -> str:
        return self.describe()
