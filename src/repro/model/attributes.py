"""Attributes of relation schemas.

An attribute is a name drawn from the countable set *A* of the paper
(Section 2.3.1) together with a data type.  Whether an attribute is *real*
or *virtual* is not a property of the attribute itself but of its position
in a particular extended relation schema (the real/virtual partition of
Definition 2) — e.g. the natural join can turn a virtual attribute of one
operand into a real attribute of the result (Table 3d).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import SchemaError
from repro.model.types import DataType

__all__ = ["Attribute"]

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


@dataclass(frozen=True, slots=True)
class Attribute:
    """A named, typed attribute.

    Parameters
    ----------
    name:
        Attribute name; must be a valid identifier.  Under the Universal
        Relation Schema Assumption (URSA, Section 2.3.2) the same name in
        two schemas denotes the same data, so two attributes with equal
        names must have equal types inside one environment.
    dtype:
        The attribute's data type.
    """

    name: str
    dtype: DataType

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise SchemaError(f"invalid attribute name {self.name!r}")
        if not isinstance(self.dtype, DataType):
            raise SchemaError(f"invalid data type {self.dtype!r} for {self.name!r}")

    @property
    def is_service_reference(self) -> bool:
        """True iff this attribute holds service references (SERVICE type)."""
        return self.dtype is DataType.SERVICE

    def renamed(self, new_name: str) -> "Attribute":
        """Return a copy of this attribute with another name (same type)."""
        return Attribute(new_name, self.dtype)

    def __str__(self) -> str:
        return f"{self.name} {self.dtype.value}"
