"""Plain relation schemas (Section 2.3.1 of the paper).

A relation schema is an ordered sequence of attributes: the paper models it
as a relation symbol ``R`` with an injective function ``attr_R`` from
``{1..type(R)}`` to attribute names.  We keep the ordering explicit (it
matters for tuple coordinates, Definition 4) and expose both positional and
name-based access.

Plain relation schemas are used for prototype input/output schemas; the
extended relation schemas of Definition 2 live in
:mod:`repro.model.xschema`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import DuplicateAttributeError, SchemaError, UnknownAttributeError
from repro.model.attributes import Attribute
from repro.model.types import DataType, coerce_value

__all__ = ["RelationSchema"]


class RelationSchema:
    """An ordered, duplicate-free sequence of typed attributes.

    Instances are immutable and hashable; equality is structural (same
    attributes, same order).
    """

    __slots__ = ("_attributes", "_index", "_hash")

    def __init__(self, attributes: Iterable[Attribute]):
        attrs = tuple(attributes)
        index: dict[str, int] = {}
        for position, attribute in enumerate(attrs):
            if not isinstance(attribute, Attribute):
                raise SchemaError(f"not an Attribute: {attribute!r}")
            if attribute.name in index:
                raise DuplicateAttributeError(
                    f"duplicate attribute {attribute.name!r} in schema"
                )
            index[attribute.name] = position
        object.__setattr__(self, "_attributes", attrs)
        object.__setattr__(self, "_index", index)
        object.__setattr__(self, "_hash", hash(attrs))

    # -- construction helpers ------------------------------------------------

    @classmethod
    def of(cls, **attrs: DataType | str) -> "RelationSchema":
        """Build a schema from keyword arguments.

        >>> RelationSchema.of(address="STRING", text="STRING")
        """
        attributes = []
        for name, dtype in attrs.items():
            if isinstance(dtype, str):
                dtype = DataType.from_name(dtype)
            attributes.append(Attribute(name, dtype))
        return cls(attributes)

    # -- attribute access ----------------------------------------------------

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """The attributes in schema order."""
        return self._attributes

    @property
    def names(self) -> tuple[str, ...]:
        """Attribute names in schema order (``schema(R)`` as a sequence)."""
        return tuple(a.name for a in self._attributes)

    @property
    def name_set(self) -> frozenset[str]:
        """``schema(R)`` as a set of attribute names."""
        return frozenset(self._index)

    @property
    def arity(self) -> int:
        """``type(R)``: the number of attributes."""
        return len(self._attributes)

    def attribute(self, name: str) -> Attribute:
        """Return the attribute named ``name`` or raise UnknownAttributeError."""
        try:
            return self._attributes[self._index[name]]
        except KeyError:
            raise UnknownAttributeError(name) from None

    def position(self, name: str) -> int:
        """0-based position of ``name`` in the schema order."""
        try:
            return self._index[name]
        except KeyError:
            raise UnknownAttributeError(name) from None

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def dtype(self, name: str) -> DataType:
        """The data type of attribute ``name``."""
        return self.attribute(name).dtype

    # -- tuple helpers -------------------------------------------------------

    def tuple_from_mapping(self, mapping: Mapping[str, object]) -> tuple:
        """Build a value tuple in schema order from a name→value mapping.

        Values are coerced into their attribute domains; missing or extra
        keys raise :class:`SchemaError`.
        """
        extra = set(mapping) - set(self._index)
        if extra:
            raise UnknownAttributeError(sorted(extra)[0])
        try:
            return tuple(
                coerce_value(mapping[a.name], a.dtype) for a in self._attributes
            )
        except KeyError as exc:
            raise SchemaError(f"missing value for attribute {exc.args[0]!r}") from None

    def mapping_from_tuple(self, values: tuple) -> dict[str, object]:
        """Inverse of :meth:`tuple_from_mapping`."""
        if len(values) != self.arity:
            raise SchemaError(
                f"tuple of length {len(values)} does not fit schema of arity {self.arity}"
            )
        return {a.name: v for a, v in zip(self._attributes, values)}

    # -- structural equality -------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(str(a) for a in self._attributes)
        return f"RelationSchema({inner})"
