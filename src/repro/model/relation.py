"""Extended relations, or X-Relations (Definition 3).

An X-Relation over an extended relation schema ``R`` is a finite set of
tuples over ``R``; tuples carry values for the real attributes only, in
schema order.  X-Relations are immutable values: the algebra operators
produce new X-Relations, and the dynamic layer
(:mod:`repro.continuous.xdrelation`) journals insertions/deletions instead
of mutating.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import InvalidOperatorError
from repro.model.xschema import ExtendedRelationSchema

__all__ = ["XRelation"]


class XRelation:
    """A finite set of tuples over an extended relation schema.

    ``validated=True`` skips per-tuple domain validation — reserved for
    operator internals whose tuples are recombinations of already-validated
    values (every public construction path validates).
    """

    __slots__ = ("schema", "_tuples")

    def __init__(
        self,
        schema: ExtendedRelationSchema,
        tuples: Iterable[tuple] = (),
        validated: bool = False,
    ):
        self.schema = schema
        if validated:
            self._tuples = frozenset(tuples)
        else:
            self._tuples = frozenset(schema.validate_tuple(t) for t in tuples)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_mappings(
        cls,
        schema: ExtendedRelationSchema,
        rows: Iterable[Mapping[str, object]],
    ) -> "XRelation":
        """Build an X-Relation from name→value mappings (real attrs only)."""
        return cls(schema, (schema.tuple_from_mapping(row) for row in rows))

    def replace_tuples(self, tuples: Iterable[tuple]) -> "XRelation":
        """A new X-Relation over the same schema with other tuples."""
        return XRelation(self.schema, tuples)

    # -- set-of-tuples interface -------------------------------------------------

    @property
    def tuples(self) -> frozenset[tuple]:
        return self._tuples

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, values: object) -> bool:
        return values in self._tuples

    def sorted_tuples(self) -> list[tuple]:
        """Tuples in a deterministic order (for printing and tests)."""
        return sorted(self._tuples, key=_sort_key)

    def to_mappings(self) -> list[dict[str, object]]:
        """All tuples as name→value dicts, deterministically ordered."""
        return [self.schema.mapping_from_tuple(t) for t in self.sorted_tuples()]

    # -- value access ---------------------------------------------------------

    def column(self, name: str) -> list[object]:
        """All values of real attribute ``name``, deterministically ordered."""
        position = self.schema.real_position(name)
        return [t[position] for t in self.sorted_tuples()]

    # -- set operators (Section 3.1.1) -----------------------------------------

    def _check_compatible(self, other: "XRelation", op: str) -> None:
        if not self.schema.compatible(other.schema):
            raise InvalidOperatorError(
                f"{op}: operand schemas are not compatible "
                f"({self.schema!r} vs {other.schema!r})"
            )

    def union(self, other: "XRelation") -> "XRelation":
        self._check_compatible(other, "union")
        return XRelation(self.schema, self._tuples | other._tuples)

    def intersection(self, other: "XRelation") -> "XRelation":
        self._check_compatible(other, "intersection")
        return XRelation(self.schema, self._tuples & other._tuples)

    def difference(self, other: "XRelation") -> "XRelation":
        self._check_compatible(other, "difference")
        return XRelation(self.schema, self._tuples - other._tuples)

    __or__ = union
    __and__ = intersection
    __sub__ = difference

    # -- equality ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, XRelation):
            return NotImplemented
        return self.schema.compatible(other.schema) and self._tuples == other._tuples

    def __hash__(self) -> int:
        return hash((self.schema.names, self._tuples))

    # -- rendering ---------------------------------------------------------------

    def to_table(self, max_width: int = 28) -> str:
        """Render as a text table in the paper's style: one column per
        schema attribute, with ``*`` in virtual columns."""
        headers = list(self.schema.names)
        rows = []
        for t in self.sorted_tuples():
            mapping = self.schema.mapping_from_tuple(t)
            row = []
            for name in headers:
                if name in self.schema.virtual_names:
                    row.append("*")
                else:
                    row.append(_render_value(mapping[name], max_width))
            rows.append(row)
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
            for i in range(len(headers))
        ]
        def fmt(cells: Sequence[str]) -> str:
            return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"
        sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
        lines = [sep, fmt(headers), sep]
        lines.extend(fmt(r) for r in rows)
        lines.append(sep)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"XRelation({self.schema.name or '<anonymous>'}, {len(self)} tuples)"


def _render_value(value: object, max_width: int) -> str:
    if isinstance(value, bytes):
        text = f"<blob {len(value)}B>"
    elif isinstance(value, float):
        text = f"{value:.6g}"
    else:
        text = str(value)
    if len(text) > max_width:
        text = text[: max_width - 1] + "…"
    return text


def _sort_key(values: tuple):
    """Total order over heterogeneous value tuples for deterministic output."""
    return tuple((type(v).__name__, repr(v)) for v in values)
