"""Fault-tolerant service invocation: policies and per-service health.

The paper promises that "sensors that are deactivated (or failing) [are]
automatically removed" (Section 1.2), and its evaluation runs against
flaky physical devices.  This module supplies the model-level half of
that promise:

* :class:`InvocationPolicy` — the knobs: how many device attempts a
  service gets per tick, how long to back off after a failure, how many
  consecutive failures quarantine a service and for how long;
* :class:`HealthTracker` — per-service health records (consecutive
  failures, last success/failure instants, an UP → SUSPECT → QUARANTINED
  state machine) fed by :meth:`repro.model.services.ServiceRegistry.invoke`
  and consumed by the core ERM, which treats a quarantined service like a
  lease expiry (see :mod:`repro.pems.erm`).

Determinism at an instant (Section 3.2) shapes the design: gates that
decide whether an invocation may reach the device only ever consult
health stamps from *strictly earlier* instants, so the outcome of an
invocation at instant τ never depends on how many times — or in which
order — other queries invoked the service at τ.  The one exception is the
per-tick attempt cap (``max_failures_per_tick``), which counts same-tick
device failures and is therefore order-sensitive; it is off by default
and documented as an operational load-shedding guard (DESIGN.md §8).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "HealthState",
    "InvocationPolicy",
    "PERMISSIVE_POLICY",
    "ServiceHealth",
    "HealthTracker",
]


class HealthState(enum.Enum):
    """The health state machine of one service."""

    UP = "up"                    # no outstanding failures
    SUSPECT = "suspect"          # failing, under the quarantine threshold
    QUARANTINED = "quarantined"  # threshold crossed: remove from the environment

    def __repr__(self) -> str:  # terse in test diffs
        return self.value


@dataclass(frozen=True)
class InvocationPolicy:
    """Retry/backoff/quarantine knobs enforced by the service registry.

    Parameters
    ----------
    backoff:
        After a device failure at instant τ, invocations of that service
        at instants ``τ+1 .. τ+backoff-1`` fail fast (the device is not
        contacted); the first real retry happens at ``τ+backoff``.
        ``0`` disables the gate (retry every instant — seed behaviour).
    failure_threshold:
        Consecutive device failures that flip a service to QUARANTINED.
        ``None`` disables quarantine.
    quarantine_backoff:
        Instants a quarantined service stays blocked before it may be
        probed / re-admitted.  The core ERM uses this as the re-admission
        delay after it removes the service (quarantine-as-lease-expiry).
    max_failures_per_tick:
        Per-service cap on *failed* device attempts within one instant;
        once reached, further invocations that instant fail fast.  Bounds
        the "N queries re-invoke one crashed device N times per tick"
        cost, at the price of strict instant-determinism (the cap is
        order-sensitive within the tick) — keep it ``None`` wherever
        engines are compared differentially.
    """

    backoff: int = 0
    failure_threshold: int | None = None
    quarantine_backoff: int = 8
    max_failures_per_tick: int | None = None

    def __post_init__(self):
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")
        if self.failure_threshold is not None and self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1 (or None)")
        if self.quarantine_backoff < 1:
            raise ValueError("quarantine_backoff must be >= 1")
        if self.max_failures_per_tick is not None and self.max_failures_per_tick < 1:
            raise ValueError("max_failures_per_tick must be >= 1 (or None)")

    @property
    def enabled(self) -> bool:
        """True iff any knob deviates from the fully permissive default."""
        return (
            self.backoff > 0
            or self.failure_threshold is not None
            or self.max_failures_per_tick is not None
        )


#: The default policy: every gate disabled, behaviour identical to a
#: registry without fault tolerance (health is still *tracked*).
PERMISSIVE_POLICY = InvocationPolicy()


@dataclass
class ServiceHealth:
    """Mutable health record of one service reference."""

    state: HealthState = HealthState.UP
    consecutive_failures: int = 0
    total_failures: int = 0
    total_successes: int = 0
    fast_failures: int = 0           # refused by a gate, device untouched
    last_success: int | None = None  # instant of the last device success
    last_failure: int | None = None  # instant of the last device failure
    quarantined_at: int | None = None

    def snapshot(self) -> dict:
        """A plain-dict view (benchmarks and reports)."""
        return {
            "state": self.state.value,
            "consecutive_failures": self.consecutive_failures,
            "total_failures": self.total_failures,
            "total_successes": self.total_successes,
            "fast_failures": self.fast_failures,
            "last_success": self.last_success,
            "last_failure": self.last_failure,
            "quarantined_at": self.quarantined_at,
        }


@dataclass
class _TickFailures:
    """Same-instant failed-attempt counter (for the per-tick cap)."""

    instant: int
    count: int = 0


class HealthTracker:
    """Per-service health, fed by the registry's invocation outcomes.

    Only *device* outcomes move the state machine: a fast-fail (an
    invocation refused by a gate) records nothing but a counter, so
    backoff windows are anchored at real failures and cannot
    self-perpetuate.
    """

    def __init__(self, policy: InvocationPolicy | None = None):
        self.policy = policy if policy is not None else PERMISSIVE_POLICY
        self._records: dict[str, ServiceHealth] = {}
        self._tick_failures: dict[str, _TickFailures] = {}
        #: Bumped whenever something a substitution *score* can read
        #: changes (state transitions, failure counts) — successes on a
        #: clean UP record deliberately don't bump it, so the failover
        #: cache stays warm across fault-free ticks.
        self.version = 0

    # -- observation -------------------------------------------------------------

    def health(self, reference: str) -> ServiceHealth:
        """The (possibly fresh) health record of ``reference``."""
        record = self._records.get(reference)
        if record is None:
            record = self._records[reference] = ServiceHealth()
        return record

    def state(self, reference: str) -> HealthState:
        record = self._records.get(reference)
        return record.state if record is not None else HealthState.UP

    def known(self) -> frozenset[str]:
        """Every reference with a health record."""
        return frozenset(self._records)

    def quarantined(self) -> frozenset[str]:
        """References currently in the QUARANTINED state."""
        return frozenset(
            ref
            for ref, record in self._records.items()
            if record.state is HealthState.QUARANTINED
        )

    def snapshot(self) -> dict[str, dict]:
        """Reference → health view, for diagnostics and differentials."""
        return {ref: r.snapshot() for ref, r in sorted(self._records.items())}

    # -- gates (consulted before the device is contacted) ------------------------

    def check(self, reference: str, instant: int) -> tuple[str, int | None] | None:
        """Why an invocation at ``instant`` must fail fast, or None.

        Returns ``(reason, retry_at)`` — matching
        :class:`~repro.errors.ServiceUnavailableError` — when a gate is
        closed.  All state-machine gates consult only stamps from
        instants strictly before ``instant``, keeping invocation outcomes
        independent of same-instant invocation order.
        """
        policy = self.policy
        record = self._records.get(reference)
        if record is None:
            return None
        if (
            record.state is HealthState.QUARANTINED
            and record.quarantined_at is not None
            and record.quarantined_at < instant
        ):
            release = record.quarantined_at + policy.quarantine_backoff
            if instant < release:
                return ("quarantined", release)
        elif (
            policy.backoff > 0
            and record.last_failure is not None
            and record.last_failure < instant
            and record.consecutive_failures > 0
        ):
            retry = record.last_failure + policy.backoff
            if instant < retry:
                return ("backoff", retry)
        if policy.max_failures_per_tick is not None:
            tick = self._tick_failures.get(reference)
            if (
                tick is not None
                and tick.instant == instant
                and tick.count >= policy.max_failures_per_tick
            ):
                return ("attempt-cap", instant + 1)
        return None

    def record_fast_failure(self, reference: str) -> None:
        """A gate refused the invocation; the device was not contacted."""
        self.health(reference).fast_failures += 1

    # -- device outcomes ---------------------------------------------------------

    def record_success(self, reference: str, instant: int) -> None:
        record = self._records.get(reference)
        if record is None:
            if not self.policy.enabled:
                # Permissive policy and never-failed service: skip the
                # record entirely — keeps the hot path allocation-free.
                return
            record = self.health(reference)
        if record.state is not HealthState.UP or record.total_failures:
            self.version += 1
        record.total_successes += 1
        record.consecutive_failures = 0
        record.last_success = instant
        if record.state is not HealthState.QUARANTINED:
            record.state = HealthState.UP
        else:
            # A successful probe after the quarantine backoff: recovered.
            record.state = HealthState.UP
            record.quarantined_at = None

    def record_failure(self, reference: str, instant: int) -> None:
        record = self.health(reference)
        self.version += 1
        record.total_failures += 1
        record.consecutive_failures += 1
        record.last_failure = instant
        threshold = self.policy.failure_threshold
        if threshold is not None and record.consecutive_failures >= threshold:
            if record.state is not HealthState.QUARANTINED:
                record.state = HealthState.QUARANTINED
                record.quarantined_at = instant
            else:
                # A failed probe re-arms the quarantine window.
                record.quarantined_at = instant
        elif record.state is not HealthState.QUARANTINED:
            record.state = HealthState.SUSPECT
        if self.policy.max_failures_per_tick is not None:
            tick = self._tick_failures.get(reference)
            if tick is None or tick.instant != instant:
                tick = self._tick_failures[reference] = _TickFailures(instant)
            tick.count += 1

    # -- lifecycle ---------------------------------------------------------------

    def release_due(self, reference: str, instant: int) -> bool:
        """True iff a quarantined service's backoff has elapsed at
        ``instant`` (the ERM may re-admit it)."""
        record = self._records.get(reference)
        if record is None or record.state is not HealthState.QUARANTINED:
            return False
        if record.quarantined_at is None:
            return True
        return instant >= record.quarantined_at + self.policy.quarantine_backoff

    def release(self, reference: str) -> None:
        """Lift a quarantine: the service re-enters on probation
        (SUSPECT with a clean consecutive-failure count), so a still-
        broken service trips the threshold again quickly."""
        record = self._records.get(reference)
        if record is None:
            return
        self.version += 1
        record.state = HealthState.SUSPECT
        record.consecutive_failures = 0
        record.quarantined_at = None

    def forget(self, reference: str) -> None:
        """Drop the record (service deregistered for good)."""
        if self._records.pop(reference, None) is not None:
            self.version += 1
        self._tick_failures.pop(reference, None)

    def __repr__(self) -> str:
        states = {s: 0 for s in HealthState}
        for record in self._records.values():
            states[record.state] += 1
        parts = ", ".join(f"{s.value}={n}" for s, n in states.items() if n)
        return f"HealthTracker({parts or 'empty'})"
