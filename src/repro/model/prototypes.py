"""Prototypes: declarations of distributed functionalities (Section 2.1).

A prototype decouples *what* a functionality does (its declaration: input
and output relation schemas, and whether it is active) from *how* it is
implemented (methods provided by services, see :mod:`repro.model.services`).

Formal constraints from Section 2.3.1:

* ``schema(Input_psi)`` and ``schema(Output_psi)`` are disjoint,
* ``schema(Output_psi)`` is non-empty,
* ``active(psi)`` tags prototypes whose invocation has a side effect on the
  physical environment that cannot be neglected (e.g. sending an SMS).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.model.schema import RelationSchema

__all__ = ["Prototype"]


@dataclass(frozen=True)
class Prototype:
    """The declaration of a distributed functionality.

    Parameters
    ----------
    name:
        Prototype name, e.g. ``sendMessage``; unique within an environment.
    input_schema:
        Relation schema of the input parameters (may be empty, like for
        ``getTemperature``).
    output_schema:
        Relation schema of the invocation result; must be non-empty.
    active:
        True iff invocations have a non-negligible side effect on the
        physical environment (Section 2.1).  Active prototypes constrain
        query rewriting (Section 3.3) and define action sets (Definition 8).
    """

    name: str
    input_schema: RelationSchema
    output_schema: RelationSchema
    active: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid prototype name {self.name!r}")
        if self.output_schema.arity == 0:
            raise SchemaError(
                f"prototype {self.name!r}: output schema must be non-empty"
            )
        overlap = self.input_schema.name_set & self.output_schema.name_set
        if overlap:
            raise SchemaError(
                f"prototype {self.name!r}: input and output schemas overlap "
                f"on {sorted(overlap)}"
            )

    @property
    def input_names(self) -> frozenset[str]:
        """``schema(Input_psi)`` as a set of attribute names."""
        return self.input_schema.name_set

    @property
    def output_names(self) -> frozenset[str]:
        """``schema(Output_psi)`` as a set of attribute names."""
        return self.output_schema.name_set

    @property
    def is_passive(self) -> bool:
        """Convenience negation of :attr:`active`."""
        return not self.active

    def signature(self) -> str:
        """Render the prototype in the paper's pseudo-DDL style.

        >>> proto.signature()
        'PROTOTYPE sendMessage( address STRING, text STRING ) : ( sent BOOLEAN ) ACTIVE'
        """
        inputs = ", ".join(str(a) for a in self.input_schema)
        outputs = ", ".join(str(a) for a in self.output_schema)
        suffix = " ACTIVE" if self.active else ""
        return f"PROTOTYPE {self.name}( {inputs} ) : ( {outputs} ){suffix}"

    def __str__(self) -> str:
        return self.signature()
