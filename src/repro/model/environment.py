"""Relational pervasive environments (Definitions 5 and 6).

A relational pervasive environment extends the classical notion of database:
it is a set of X-Relations (and, with the continuous extension of Section 4,
XD-Relations) together with the declared prototypes and the dynamic set of
available services.

The environment enforces the Universal Relation Schema Assumption (URSA,
Section 2.3.2): an attribute name denotes the same data — hence the same
data type — wherever it appears.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import (
    EnvironmentError_,
    UnknownPrototypeError,
    UnknownRelationError,
)
from repro.model.attributes import Attribute
from repro.model.prototypes import Prototype
from repro.model.relation import XRelation
from repro.model.services import Service, ServiceRegistry
from repro.model.types import DataType
from repro.model.xschema import ExtendedRelationSchema

__all__ = ["PervasiveEnvironment"]


class PervasiveEnvironment:
    """Catalog of X-Relations, prototypes and services.

    The relation store accepts both static :class:`XRelation` objects and
    dynamic XD-Relations (any object exposing ``schema`` and
    ``instantaneous(instant) -> XRelation``); query evaluation always sees
    the instantaneous X-Relation at the evaluation instant (Section 4.2).
    """

    def __init__(self, registry: ServiceRegistry | None = None):
        self._relations: dict[str, object] = {}
        self._prototypes: dict[str, Prototype] = {}
        self._attribute_types: dict[str, DataType] = {}
        self.registry = registry if registry is not None else ServiceRegistry()

    # -- URSA bookkeeping -------------------------------------------------------

    def _check_ursa(self, attributes: Iterable[Attribute], where: str) -> None:
        for attribute in attributes:
            known = self._attribute_types.get(attribute.name)
            if known is not None and known is not attribute.dtype:
                raise EnvironmentError_(
                    f"URSA violation in {where}: attribute {attribute.name!r} "
                    f"already has type {known.value}, got {attribute.dtype.value}"
                )
        for attribute in attributes:
            self._attribute_types.setdefault(attribute.name, attribute.dtype)

    # -- prototypes ---------------------------------------------------------------

    def declare_prototype(self, prototype: Prototype) -> Prototype:
        """Declare a prototype; redeclaration must be identical."""
        existing = self._prototypes.get(prototype.name)
        if existing is not None:
            if existing != prototype:
                raise EnvironmentError_(
                    f"prototype {prototype.name!r} already declared differently"
                )
            return existing
        self._check_ursa(prototype.input_schema, f"prototype {prototype.name!r}")
        self._check_ursa(prototype.output_schema, f"prototype {prototype.name!r}")
        self._prototypes[prototype.name] = prototype
        return prototype

    def prototype(self, name: str) -> Prototype:
        try:
            return self._prototypes[name]
        except KeyError:
            raise UnknownPrototypeError(name) from None

    @property
    def prototypes(self) -> tuple[Prototype, ...]:
        return tuple(self._prototypes[n] for n in sorted(self._prototypes))

    # -- services -------------------------------------------------------------------

    def register_service(self, service: Service) -> None:
        """Register a service; its prototypes must all be declared."""
        for prototype in service.prototypes:
            if prototype.name not in self._prototypes:
                raise UnknownPrototypeError(prototype.name)
            if self._prototypes[prototype.name] != prototype:
                raise EnvironmentError_(
                    f"service {service.reference!r} implements a different "
                    f"declaration of prototype {prototype.name!r}"
                )
        self.registry.register(service)

    def unregister_service(self, reference: str) -> None:
        self.registry.unregister(reference)

    # -- relations -------------------------------------------------------------------

    def add_relation(self, relation: object, name: str | None = None) -> None:
        """Store an X-Relation or XD-Relation under ``name`` (defaults to
        its schema name)."""
        schema = getattr(relation, "schema", None)
        if not isinstance(schema, ExtendedRelationSchema):
            raise EnvironmentError_(
                f"not an X-Relation or XD-Relation: {relation!r}"
            )
        key = name or schema.name
        if not key:
            raise EnvironmentError_("relation needs a name to enter the environment")
        self._check_ursa(schema.attributes, f"relation {key!r}")
        for bp in schema.binding_patterns:
            if bp.prototype.name not in self._prototypes:
                self.declare_prototype(bp.prototype)
        self._relations[key] = relation

    def remove_relation(self, name: str) -> None:
        if name not in self._relations:
            raise UnknownRelationError(name)
        del self._relations[name]

    def relation(self, name: str) -> object:
        """The stored relation object (static or dynamic)."""
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def schema(self, name: str) -> ExtendedRelationSchema:
        return self.relation(name).schema  # type: ignore[attr-defined]

    def instantaneous(self, name: str, instant: int) -> XRelation:
        """The X-Relation named ``name`` as of ``instant``.

        Static X-Relations are time-invariant; dynamic relations return
        their instantaneous relation (Section 4.1).
        """
        stored = self.relation(name)
        if isinstance(stored, XRelation):
            return stored
        instantaneous = getattr(stored, "instantaneous", None)
        if instantaneous is None:
            raise EnvironmentError_(
                f"relation {name!r} is neither static nor dynamic: {stored!r}"
            )
        return instantaneous(instant)

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._relations))

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    # -- catalog rendering -------------------------------------------------------------

    def describe(self) -> str:
        """Human-readable catalog: prototypes, services, relations."""
        lines = ["-- Prototypes --"]
        lines.extend(f"{p.signature()};" for p in self.prototypes)
        lines.append("-- Services --")
        for service in sorted(self.registry, key=lambda s: s.reference):
            impls = ", ".join(sorted(service.prototype_names))
            lines.append(f"SERVICE {service.reference} IMPLEMENTS {impls};")
        lines.append("-- Relations --")
        for name in self.relation_names:
            lines.append(self.schema(name).with_name(name).describe() + ";")
        return "\n".join(lines)
