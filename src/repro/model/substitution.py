"""Semantic service substitution over prototypes.

When a bound service dies permanently (quarantine that never lifts, or a
lease that never renews), the environment — not the user — heals the
binding ("Semantic Service Substitution in Pervasive Environments",
Ibrahim, Le Mouël, Frénot; see PAPERS.md).  This module is the model-layer
half of that machinery: a declarative *substitution relation* over
prototypes plus the bookkeeping the registry and the core ERM consult when
they reroute invocations.

Three rule kinds relate a prototype ``psi`` to its substitutes:

``equivalent_to``
    Another reference implements the *same* prototype; invocations are
    forwarded verbatim.
``specializes``
    The substitute offers a richer prototype ``via`` whose output schema is
    a superset of ``schema(Output_psi)`` and whose input schema is a subset
    of ``schema(Input_psi)``; results are projected down to ``psi``'s
    output order.
``composed_of``
    An explicit composition of live services implements ``psi``: the steps
    run in sequence, each step reading its input attributes from the
    accumulated environment (initially ``psi``'s inputs) and contributing
    its outputs, with Cartesian semantics over multi-row step results.

Determinism (Section 3.2 convention): rules are resolved and ranked only
inside the core ERM's tick sweep, from health stamps that are strictly
earlier than the instant being evaluated, and ranking ties break on the
substitute reference ordering — so every engine sees the same binding
table for a given instant regardless of evaluation order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.errors import SchemaError
from repro.model.invocation_policy import HealthState
from repro.model.prototypes import Prototype

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (services imports us)
    from repro.model.services import ServiceRegistry

__all__ = [
    "CompositionStep",
    "SubstitutionRule",
    "SubstitutionPolicy",
    "ResolvedBinding",
    "Rebind",
    "SubstitutionState",
]

#: Rule kinds in preference order: a direct equivalent beats a projection,
#: which beats assembling a composition (Section 4 of the substitution
#: paper orders candidates the same way: identical interface first).
RULE_KINDS = ("equivalent_to", "specializes", "composed_of")
_KIND_RANK = {kind: rank for rank, kind in enumerate(RULE_KINDS)}


@dataclass(frozen=True)
class CompositionStep:
    """One step of a ``composed_of`` rule: invoke ``prototype`` on
    ``reference``, feeding inputs from the accumulated attribute
    environment and merging outputs back into it."""

    prototype: str
    reference: str


@dataclass(frozen=True)
class SubstitutionRule:
    """One declared edge of the substitution relation.

    ``prototype`` names the functionality being substituted; ``reference``
    restricts the rule to one failing service (``None`` = any provider of
    the prototype).  Exactly one of the kind-specific payloads is set:
    ``substitute`` (+ ``via`` for ``specializes``) or ``steps``.
    """

    kind: str
    prototype: str
    reference: str | None = None
    substitute: str | None = None
    via: str | None = None
    steps: tuple[CompositionStep, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in RULE_KINDS:
            raise SchemaError(
                f"substitution rule kind {self.kind!r} not in {RULE_KINDS}"
            )
        if self.kind == "composed_of":
            if not self.steps:
                raise SchemaError("composed_of rule needs at least one step")
            if self.substitute is not None or self.via is not None:
                raise SchemaError("composed_of rule takes steps, not a substitute")
        else:
            if not self.substitute:
                raise SchemaError(f"{self.kind} rule needs a substitute reference")
            if self.steps:
                raise SchemaError(f"{self.kind} rule does not take steps")
            if self.kind == "specializes" and not self.via:
                raise SchemaError(
                    "specializes rule needs the richer prototype name (via=)"
                )
            if self.kind == "equivalent_to" and self.via is not None:
                raise SchemaError("equivalent_to rule does not take via=")

    # -- declarative constructors -------------------------------------------

    @classmethod
    def equivalent_to(
        cls, prototype: str, substitute: str, reference: str | None = None
    ) -> "SubstitutionRule":
        """``substitute`` implements the same ``prototype``."""
        return cls("equivalent_to", prototype, reference, substitute)

    @classmethod
    def specializes(
        cls,
        prototype: str,
        substitute: str,
        via: str,
        reference: str | None = None,
    ) -> "SubstitutionRule":
        """``substitute`` offers ``via`` (superset outputs, subset inputs);
        results are projected down to ``prototype``'s output schema."""
        return cls("specializes", prototype, reference, substitute, via)

    @classmethod
    def composed_of(
        cls,
        prototype: str,
        steps: Iterable[tuple[str, str] | CompositionStep],
        reference: str | None = None,
    ) -> "SubstitutionRule":
        """A sequential composition of ``(prototype, reference)`` steps
        implements ``prototype``."""
        normalized = tuple(
            step if isinstance(step, CompositionStep) else CompositionStep(*step)
            for step in steps
        )
        return cls("composed_of", prototype, reference, steps=normalized)

    def describe(self) -> str:
        scope = self.reference or "*"
        if self.kind == "composed_of":
            chain = " -> ".join(f"{s.prototype}@{s.reference}" for s in self.steps)
            return f"{self.prototype}[{scope}] composed_of {chain}"
        if self.kind == "specializes":
            return (
                f"{self.prototype}[{scope}] specializes "
                f"{self.substitute}/{self.via}"
            )
        return f"{self.prototype}[{scope}] equivalent_to {self.substitute}"


@dataclass(frozen=True)
class SubstitutionPolicy:
    """Knobs governing when and how the environment rebinds.

    ``failover``
        Serve the very instant a bound device fails from the pre-scored
        candidate table (zero missed ticks); off = first failed tick is
        degraded and the sweep rebinds at the next instant.
    ``sticky``
        Install a durable binding when the ERM observes quarantine or
        lease expiry; the binding holds until the substitute itself fails
        (a re-admitted-on-probation original does not reclaim it).
    ``max_chain``
        Maximum substitution depth when bindings route through services
        that are themselves substituted (cycle/diameter guard).
    ``latency_aware``
        Fold observed invocation-latency EWMAs into candidate scores.
        Off by default: wall-clock latency is not deterministic across
        runs, so enabling this trades the strict cross-engine
        reproducibility the differential suites pin.
    """

    failover: bool = True
    sticky: bool = True
    max_chain: int = 4
    latency_aware: bool = False

    def __post_init__(self) -> None:
        if self.max_chain < 1:
            raise SchemaError("substitution max_chain must be >= 1")


@dataclass(frozen=True)
class ResolvedBinding:
    """An executable substitution plan for one ``(prototype, reference)``.

    ``targets`` is the invocation recipe: one ``(Prototype, reference)``
    pair for ``equivalent_to`` (the original prototype) and
    ``specializes`` (the richer ``via`` prototype), or the full step
    sequence for ``composed_of``.  ``projection`` carries the positions of
    the original output attributes inside the ``via`` output schema for
    ``specializes`` plans.
    """

    rule: SubstitutionRule
    prototype: Prototype
    reference: str
    targets: tuple[tuple[Prototype, str], ...]
    projection: tuple[int, ...] | None = None

    @property
    def target_references(self) -> tuple[str, ...]:
        return tuple(reference for _, reference in self.targets)

    def describe(self) -> str:
        if self.rule.kind == "composed_of":
            chain = " -> ".join(
                f"{proto.name}@{ref}" for proto, ref in self.targets
            )
            return f"composed_of {chain}"
        proto, ref = self.targets[0]
        if self.rule.kind == "specializes":
            return f"specializes {ref}/{proto.name}"
        return f"equivalent_to {ref}"


@dataclass(frozen=True)
class Rebind:
    """One entry of the rebind history (surfaced by ``.substitutions``)."""

    instant: int
    prototype: str
    reference: str
    target: str
    reason: str
    epoch: int

    def describe(self) -> str:
        return (
            f"@{self.instant} {self.prototype}[{self.reference}] "
            f"{self.target} ({self.reason})"
        )


class SubstitutionState:
    """Registry-side substitution bookkeeping.

    The state machine has two tables, both only ever mutated by the core
    ERM's tick sweep (so they are frozen for the duration of an instant):

    * ``bindings`` — durable reroutes installed after the sweep observed a
      quarantine or lease expiry; consulted by
      :meth:`ServiceRegistry.invoke` *before* health gates, so the dead
      device is never contacted again while bound.
    * ``failover`` — per-tick pre-scored candidate plans for every
      substitutable ``(prototype, reference)``; consulted on the failure
      path of :meth:`ServiceRegistry.invoke`, which is what serves the
      crash instant itself with zero missed ticks.

    Every install/drop bumps a global monotone ``epoch`` and stamps the
    rebound reference; invocation executors cache results per operand
    tuple, so they call :meth:`rebound_since` each tick and emit
    delete-of-old-rows / insert-of-new-rows for rebound references —
    the rebind-instant delta protocol that keeps all engines
    tuple-identical.
    """

    def __init__(self, policy: SubstitutionPolicy | None = None):
        self.policy = policy or SubstitutionPolicy()
        self._rules: list[SubstitutionRule] = []
        self.bindings: dict[tuple[str, str], ResolvedBinding] = {}
        self.failover: dict[tuple[str, str], tuple[ResolvedBinding, ...]] = {}
        self.epoch = 0
        # prototype name -> reference -> epoch of its latest rebind (install
        # or drop: both change what an invocation of that pair returns).
        self._rebound: dict[str, dict[str, int]] = {}
        self.history: deque[Rebind] = deque(maxlen=256)

    # -- declaration ---------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True once any rule is declared; all hot paths gate on this so a
        substitution-free environment pays a single attribute read."""
        return bool(self._rules)

    def declare(self, rule: SubstitutionRule) -> None:
        """Add a rule to the substitution relation (idempotent)."""
        if rule not in self._rules:
            self._rules.append(rule)

    @property
    def rules(self) -> tuple[SubstitutionRule, ...]:
        return tuple(self._rules)

    def rules_for(
        self, prototype_name: str, reference: str
    ) -> list[SubstitutionRule]:
        """Rules applicable to ``reference`` failing as a provider of
        ``prototype_name`` (specific-reference rules first, then
        wildcards, declaration order preserved within each group)."""
        specific = [
            r
            for r in self._rules
            if r.prototype == prototype_name and r.reference == reference
        ]
        wildcard = [
            r
            for r in self._rules
            if r.prototype == prototype_name and r.reference is None
        ]
        return specific + wildcard

    @property
    def prototype_names(self) -> frozenset[str]:
        """Prototypes covered by at least one rule."""
        return frozenset(rule.prototype for rule in self._rules)

    # -- binding table -------------------------------------------------------

    def binding(self, prototype_name: str, reference: str) -> ResolvedBinding | None:
        return self.bindings.get((prototype_name, reference))

    def bound_references(self) -> frozenset[str]:
        """References with at least one active binding (these stay
        registered and never park while bound)."""
        return frozenset(reference for _, reference in self.bindings)

    def bound_keys_for(self, reference: str) -> list[tuple[str, str]]:
        return sorted(key for key in self.bindings if key[1] == reference)

    def install(
        self, plan: ResolvedBinding, instant: int, reason: str
    ) -> Rebind:
        key = (plan.prototype.name, plan.reference)
        self.bindings[key] = plan
        return self._stamp(key, instant, plan.describe(), reason)

    def drop(
        self, prototype_name: str, reference: str, instant: int, reason: str
    ) -> Rebind | None:
        plan = self.bindings.pop((prototype_name, reference), None)
        if plan is None:
            return None
        return self._stamp(
            (prototype_name, reference), instant, "released", reason
        )

    def _stamp(
        self, key: tuple[str, str], instant: int, target: str, reason: str
    ) -> Rebind:
        self.epoch += 1
        prototype_name, reference = key
        self._rebound.setdefault(prototype_name, {})[reference] = self.epoch
        record = Rebind(instant, prototype_name, reference, target, reason, self.epoch)
        self.history.append(record)
        return record

    def rebound_since(self, prototype_name: str, epoch: int) -> frozenset[str]:
        """References of ``prototype_name`` rebound (bound *or* released)
        after ``epoch`` — the executor-side cache invalidation set."""
        stamps = self._rebound.get(prototype_name)
        if not stamps:
            return frozenset()
        return frozenset(
            reference for reference, at in stamps.items() if at > epoch
        )

    # -- resolution ----------------------------------------------------------

    def resolve(
        self, registry: "ServiceRegistry", prototype: Prototype, reference: str
    ) -> list[ResolvedBinding]:
        """Resolve every applicable rule into an executable plan against
        the *current* registry contents; unresolvable rules (substitute
        not registered, schemas incompatible, step chain broken) are
        silently skipped — they may resolve at a later sweep."""
        plans: list[ResolvedBinding] = []
        for rule in self.rules_for(prototype.name, reference):
            plan = self._resolve_rule(registry, rule, prototype, reference)
            if plan is not None:
                plans.append(plan)
        return plans

    def _resolve_rule(
        self,
        registry: "ServiceRegistry",
        rule: SubstitutionRule,
        prototype: Prototype,
        reference: str,
    ) -> ResolvedBinding | None:
        if rule.kind == "equivalent_to":
            target = rule.substitute
            if target == reference or target not in registry:
                return None
            service = registry.get(target)
            if not service.implements(prototype):
                return None
            return ResolvedBinding(rule, prototype, reference, ((prototype, target),))
        if rule.kind == "specializes":
            target = rule.substitute
            if target == reference or target not in registry:
                return None
            service = registry.get(target)
            via = next(
                (p for p in service.prototypes if p.name == rule.via), None
            )
            if via is None:
                return None
            if not (
                via.output_names >= prototype.output_names
                and via.input_names <= prototype.input_names
            ):
                return None
            projection = tuple(
                via.output_schema.position(name)
                for name in prototype.output_schema.names
            )
            return ResolvedBinding(
                rule, prototype, reference, ((via, target),), projection
            )
        # composed_of: thread the attribute environment through the steps.
        available = set(prototype.input_names)
        targets: list[tuple[Prototype, str]] = []
        for step in rule.steps:
            if step.reference == reference or step.reference not in registry:
                return None
            service = registry.get(step.reference)
            step_proto = next(
                (p for p in service.prototypes if p.name == step.prototype), None
            )
            if step_proto is None or not step_proto.input_names <= available:
                return None
            available |= step_proto.output_names
            targets.append((step_proto, step.reference))
        if not prototype.output_names <= available:
            return None
        return ResolvedBinding(rule, prototype, reference, tuple(targets))

    # -- ranking -------------------------------------------------------------

    def rank(
        self, registry: "ServiceRegistry", plans: Iterable[ResolvedBinding]
    ) -> list[ResolvedBinding]:
        """Order candidate plans best-first.

        The score is a lexicographic tuple per plan, worst target taken
        across composition steps: health-state rank (UP before SUSPECT;
        QUARANTINED targets are excluded outright), observed failure-rate
        decile from the health totals, optionally the latency EWMA decile
        (``latency_aware``), the rule-kind rank, and finally the target
        reference sequence — the deterministic tie-break required by the
        §3.2 convention.
        """
        scored: list[tuple[tuple, ResolvedBinding]] = []
        for plan in plans:
            score = self._score(registry, plan)
            if score is not None:
                scored.append((score, plan))
        scored.sort(key=lambda pair: pair[0])
        return [plan for _, plan in scored]

    def _score(
        self, registry: "ServiceRegistry", plan: ResolvedBinding
    ) -> tuple | None:
        health = registry.health
        worst_state = 0
        worst_decile = 0
        worst_latency = 0
        for _, target in plan.targets:
            if target not in registry:
                return None
            state = health.state(target)
            if state is HealthState.QUARANTINED:
                return None
            worst_state = max(
                worst_state, 1 if state is HealthState.SUSPECT else 0
            )
            if target in health.known():
                record = health.health(target)
                attempts = record.total_successes + record.total_failures
                if attempts:
                    worst_decile = max(
                        worst_decile,
                        int(10 * record.total_failures / attempts),
                    )
            if self.policy.latency_aware:
                worst_latency = max(
                    worst_latency, registry.latency_decile(target)
                )
        key: tuple = (worst_state, worst_decile)
        if self.policy.latency_aware:
            key += (worst_latency,)
        return key + (_KIND_RANK[plan.rule.kind], plan.target_references)

    def routes_through(
        self, plan: ResolvedBinding, reference: str
    ) -> bool:
        """True iff executing ``plan`` would (transitively, through the
        currently installed bindings) invoke ``reference`` — the
        install-time cycle guard."""
        seen: set[tuple[str, str]] = set()
        frontier = deque(
            (proto.name, target) for proto, target in plan.targets
        )
        while frontier:
            key = frontier.popleft()
            if key[1] == reference:
                return True
            if key in seen:
                continue
            seen.add(key)
            nested = self.bindings.get(key)
            if nested is not None:
                frontier.extend(
                    (proto.name, target) for proto, target in nested.targets
                )
        return False

    # -- reporting -----------------------------------------------------------

    def report(self) -> dict:
        """Snapshot for the CLI / ERM surface (plain data, sorted)."""
        return {
            "epoch": self.epoch,
            "rules": [rule.describe() for rule in self._rules],
            "bindings": {
                f"{prototype}[{reference}]": plan.describe()
                for (prototype, reference), plan in sorted(self.bindings.items())
            },
            "failover": {
                f"{prototype}[{reference}]": [p.describe() for p in plans]
                for (prototype, reference), plans in sorted(self.failover.items())
            },
            "history": [record.describe() for record in self.history],
        }
