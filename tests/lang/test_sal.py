"""Tests for the Serena Algebra Language parser and round-tripping."""

import pytest

from repro.algebra import (
    Aggregate,
    Assignment,
    Difference,
    Intersection,
    Invocation,
    NaturalJoin,
    Projection,
    Renaming,
    Scan,
    Selection,
    Streaming,
    Union,
    Window,
    col,
    scan,
)
from repro.errors import ParseError
from repro.lang import parse_formula, parse_query, to_sal


class TestOperators:
    def test_scan(self, paper_env):
        q = parse_query("contacts", paper_env)
        assert isinstance(q.root, Scan)
        assert q.root.name == "contacts"

    def test_unknown_relation(self, paper_env):
        from repro.errors import UnknownRelationError

        with pytest.raises(UnknownRelationError):
            parse_query("ghost", paper_env)

    def test_project(self, paper_env):
        q = parse_query("project[name, address](contacts)", paper_env)
        assert isinstance(q.root, Projection)
        assert q.root.names == ("name", "address")

    def test_select(self, paper_env):
        q = parse_query("select[name != 'Carla'](contacts)", paper_env)
        assert isinstance(q.root, Selection)
        assert q.root.formula == col("name").ne("Carla")

    def test_rename(self, paper_env):
        q = parse_query("rename[name -> who](contacts)", paper_env)
        assert isinstance(q.root, Renaming)
        assert (q.root.old, q.root.new) == ("name", "who")

    def test_assign_constant(self, paper_env):
        q = parse_query("assign[text := 'Hi'](contacts)", paper_env)
        assert isinstance(q.root, Assignment)
        assert q.root.value == "Hi"
        assert not q.root.from_attribute

    def test_assign_from_attribute(self, paper_env):
        q = parse_query("assign[text := address](contacts)", paper_env)
        assert q.root.from_attribute
        assert q.root.value == "address"

    def test_assign_boolean(self, paper_env):
        q = parse_query("assign[sent := true](contacts)", paper_env)
        assert q.root.value is True

    def test_invoke(self, paper_env):
        q = parse_query("invoke[getTemperature, sensor](sensors)", paper_env)
        assert isinstance(q.root, Invocation)
        assert q.root.binding_pattern.prototype.name == "getTemperature"

    def test_invoke_without_service_attr(self, paper_env):
        q = parse_query("invoke[getTemperature](sensors)", paper_env)
        assert q.root.binding_pattern.service_attribute == "sensor"

    def test_binary_operators(self, paper_env):
        for word, cls in (
            ("join", NaturalJoin),
            ("union", Union),
            ("intersection", Intersection),
            ("difference", Difference),
        ):
            q = parse_query(f"{word}(contacts, contacts)", paper_env)
            assert isinstance(q.root, cls)

    def test_window_and_stream(self, paper_env):
        from repro.continuous.xdrelation import XDRelation
        from repro.devices.scenario import temperatures_schema

        paper_env.add_relation(XDRelation(temperatures_schema(), infinite=True))
        q = parse_query("window[5](temperatures)", paper_env)
        assert isinstance(q.root, Window)
        assert q.root.period == 5
        q2 = parse_query("stream[insertion](window[1](temperatures))", paper_env)
        assert isinstance(q2.root, Streaming)

    def test_aggregate(self, paper_env):
        q = parse_query(
            "aggregate[messenger; count(*) as n, min(name) as first](contacts)",
            paper_env,
        )
        assert isinstance(q.root, Aggregate)
        assert q.root.group_by == ("messenger",)
        assert len(q.root.aggregates) == 2

    def test_aggregate_no_groups(self, paper_env):
        q = parse_query("aggregate[; count(*) as n](contacts)", paper_env)
        assert q.root.group_by == ()

    def test_trailing_garbage(self, paper_env):
        with pytest.raises(ParseError, match="trailing"):
            parse_query("contacts extra", paper_env)


class TestFormulas:
    def test_comparators(self):
        f = parse_formula("a <= 5 and b > 1.5")
        assert f.evaluate({"a": 5, "b": 2.0})

    def test_precedence_and_binds_tighter(self):
        f = parse_formula("a = 1 or b = 2 and c = 3")
        assert f.evaluate({"a": 1, "b": 0, "c": 0})
        assert f.evaluate({"a": 0, "b": 2, "c": 3})
        assert not f.evaluate({"a": 0, "b": 2, "c": 0})

    def test_parentheses(self):
        f = parse_formula("(a = 1 or b = 2) and c = 3")
        assert not f.evaluate({"a": 1, "b": 0, "c": 0})

    def test_not(self):
        f = parse_formula("not a = 1")
        assert f.evaluate({"a": 2})

    def test_contains(self):
        f = parse_formula("title contains 'Obama'")
        assert f.evaluate({"title": "Obama speaks"})

    def test_attribute_comparison(self):
        f = parse_formula("temperature > threshold")
        assert f.evaluate({"temperature": 30.0, "threshold": 28.0})

    def test_boolean_literal(self):
        f = parse_formula("sent = true")
        assert f.evaluate({"sent": True})
        assert not f.evaluate({"sent": False})

    def test_bare_true(self):
        f = parse_formula("true")
        assert f.evaluate({})

    def test_string_escape(self):
        f = parse_formula("name = 'O''Brien'")
        assert f.evaluate({"name": "O'Brien"})


class TestRoundTrip:
    """render() output parses back to a structurally equal plan."""

    @pytest.fixture
    def cases(self, paper_env):
        temperature_env = paper_env
        return [
            scan(temperature_env, "contacts").query(),
            scan(temperature_env, "contacts").project("name", "messenger").query(),
            scan(temperature_env, "contacts")
            .select(col("name").ne("Carla") & col("messenger").eq("email"))
            .query(),
            scan(temperature_env, "contacts").rename("name", "who").query(),
            scan(temperature_env, "contacts")
            .assign("text", "Bonjour!")
            .invoke("sendMessage")
            .query(),
            scan(temperature_env, "contacts").assign_from("text", "address").query(),
            scan(temperature_env, "cameras")
            .invoke("checkPhoto")
            .select(col("quality").ge(5))
            .invoke("takePhoto")
            .project("photo")
            .query(),
            scan(temperature_env, "contacts")
            .union(scan(temperature_env, "contacts"))
            .query(),
            scan(temperature_env, "contacts")
            .aggregate(["messenger"], ("count", None, "n"))
            .query(),
        ]

    def test_round_trips(self, paper_env, cases):
        for query in cases:
            text = to_sal(query)
            reparsed = parse_query(text, paper_env)
            assert reparsed.root == query.root, text

    def test_stream_round_trip(self, paper_env):
        from repro.continuous.xdrelation import XDRelation
        from repro.devices.scenario import temperatures_schema

        paper_env.add_relation(XDRelation(temperatures_schema(), infinite=True))
        query = (
            scan(paper_env, "temperatures")
            .window(1)
            .select(col("temperature").gt(35.5))
            .stream("insertion")
            .query()
        )
        assert parse_query(to_sal(query), paper_env).root == query.root
