"""Tests for the Serena conjunctive calculus (Datalog front-end, §7)."""

import pytest

from repro.errors import ParseError
from repro.lang.datalog import compile_rule, parse_rule


class TestParsing:
    def test_basic_rule(self):
        rule = parse_rule("ans(x, y) :- rel(x, y, _);")
        assert rule.head_name == "ans"
        assert rule.head_vars == ("x", "y")
        assert len(rule.atoms) == 1
        assert rule.atoms[0].relation == "rel"

    def test_constants_and_comparisons(self):
        rule = parse_rule("a(x) :- r(x, 'office', 5, true), x != 'y';")
        (atom,) = rule.atoms
        kinds = [t.kind for t in atom.terms]
        assert kinds == ["var", "const", "const", "const"]
        assert len(rule.comparisons) == 1

    def test_trailing_semicolon_optional(self):
        parse_rule("a(x) :- r(x)")
        parse_rule("a(x) :- r(x);")

    def test_rule_needs_atoms(self):
        with pytest.raises(ParseError, match="at least one relational atom"):
            parse_rule("a(x) :- x > 1;")

    def test_head_variable_must_be_bound(self):
        with pytest.raises(ParseError, match="unsafe rule: head variable"):
            compile_rule("a(z) :- contacts(n, _, _, _, _);", _env())

    def test_comparison_variable_must_be_bound(self):
        with pytest.raises(ParseError, match="comparison variable"):
            compile_rule("a(n) :- contacts(n, _, _, _, _), z > 1;", _env())

    def test_anonymous_not_allowed_in_comparisons(self):
        with pytest.raises(ParseError, match="'_' cannot appear"):
            parse_rule("a(x) :- r(x), _ > 1;")

    def test_repeated_head_variable_rejected(self):
        with pytest.raises(ParseError, match="repeated"):
            compile_rule("a(n, n) :- contacts(n, _, _, _, _);", _env())

    def test_arity_mismatch(self):
        with pytest.raises(ParseError, match="has 2 terms but"):
            compile_rule("a(n) :- contacts(n, x);", _env())


def _env():
    from repro.devices.paper_example import build_paper_example

    return build_paper_example().environment


class TestCompilation:
    @pytest.fixture
    def env(self):
        return _env()

    def test_constants_filter(self, env):
        q = compile_rule("who(n) :- contacts(n, _, _, 'email', _);", env)
        assert sorted(q.evaluate(env).relation.column("n")) == ["Carla", "Nicolas"]

    def test_query_named_after_head(self, env):
        q = compile_rule("who(n) :- contacts(n, _, _, _, _);", env)
        assert q.name == "who"
        assert q.schema.names == ("n",)

    def test_virtual_position_triggers_invocation(self, env):
        """Using the temperature position inserts β(getTemperature)."""
        q = compile_rule("temps(s, t) :- sensors(s, _, t);", env)
        shapes = [type(n).__name__ for n in q.root.walk()]
        assert "Invocation" in shapes
        result = q.evaluate(env).relation
        assert len(result) == 4
        assert all(isinstance(v, float) for v in result.column("t"))

    def test_unused_virtual_position_does_not_invoke(self, env):
        q = compile_rule("locs(l) :- sensors(_, l, _);", env)
        shapes = [type(n).__name__ for n in q.root.walk()]
        assert "Invocation" not in shapes
        registry = env.registry
        registry.reset_invocation_count()
        q.evaluate(env)
        assert registry.invocation_count == 0

    def test_chained_realization(self, env):
        """quality AND photo need checkPhoto then takePhoto (in input
        dependency order)."""
        q = compile_rule("pics(c, p) :- cameras(c, _, _, _, p);", env)
        shapes = [type(n).__name__ for n in q.root.walk()]
        assert shapes.count("Invocation") == 2
        result = q.evaluate(env).relation
        assert len(result) == 3
        assert all(isinstance(v, bytes) for v in result.column("p"))

    def test_active_pattern_rejected(self, env):
        with pytest.raises(ParseError, match="ACTIVE"):
            compile_rule("sent(n, s) :- contacts(n, _, _, _, s);", env)

    def test_join_on_shared_variable(self, env):
        q = compile_rule(
            "pair(s1, s2) :- sensors(s1, l, _), sensors(s2, l, _), s1 != s2;",
            env,
        )
        result = q.evaluate(env).relation
        pairs = {tuple(t) for t in result}
        assert ("sensor06", "sensor07") in pairs
        assert ("sensor07", "sensor06") in pairs
        assert len(pairs) == 2  # only the office has two sensors

    def test_repeated_variable_within_atom(self, env):
        """r(x, x) means the two positions must be equal."""
        from repro.devices.scenario import surveillance_schema
        from repro.model.relation import XRelation

        env.add_relation(
            XRelation.from_mappings(
                surveillance_schema(),
                [
                    {"name": "office", "location": "office", "threshold": 1.0},
                    {"name": "Carla", "location": "office", "threshold": 2.0},
                ],
            )
        )
        q = compile_rule("same(x) :- surveillance(x, x, _);", env)
        assert q.evaluate(env).relation.column("x") == ["office"]

    def test_comparison_over_realized_value(self, env):
        q = compile_rule("hot(s, t) :- sensors(s, _, t), t > 20.0;", env)
        result = q.evaluate(env).relation
        assert all(t > 20.0 for t in result.column("t"))

    def test_streams_rejected(self, env):
        from repro.continuous.xdrelation import XDRelation
        from repro.devices.scenario import temperatures_schema

        env.add_relation(XDRelation(temperatures_schema(), infinite=True))
        with pytest.raises(ParseError, match="streams cannot appear"):
            compile_rule("t(x) :- temperatures(_, _, x, _);", env)

    def test_equivalent_to_builder_query(self, env):
        """The rule and the hand-built algebra query agree (the §7
        calculus/algebra correspondence, on the conjunctive fragment)."""
        from repro.algebra import col, scan

        rule_q = compile_rule(
            "ans(s, t) :- sensors(s, 'office', t), t > 15.0;", env
        )
        algebra_q = (
            scan(env, "sensors")
            .select(col("location").eq("office"))
            .invoke("getTemperature")
            .select(col("temperature").gt(15.0))
            .rename("sensor", "s")
            .rename("temperature", "t")
            .project("s", "t")
            .query()
        )
        a = rule_q.evaluate(env, 1).relation
        b = algebra_q.evaluate(env, 1).relation
        assert a == b
