"""Tests for Serena SQL (the SQL-like language of Section 1.1,
concretized by this reproduction — see repro/lang/sql.py)."""

import pytest

from repro.algebra import (
    Aggregate,
    Invocation,
    NaturalJoin,
    Projection,
    Selection,
    Streaming,
    StreamingInvocation,
    Window,
)
from repro.continuous.xdrelation import XDRelation
from repro.devices.scenario import sensors_schema, surveillance_schema, temperatures_schema
from repro.errors import ParseError
from repro.lang.sql import compile_sql
from repro.model.relation import XRelation


class TestBasics:
    def test_select_star(self, paper_env):
        q = compile_sql("SELECT * FROM contacts", paper_env)
        assert len(q.evaluate(paper_env).relation) == 3
        assert q.schema.names == paper_env.schema("contacts").names

    def test_projection(self, paper_env):
        q = compile_sql("SELECT name, messenger FROM contacts", paper_env)
        assert isinstance(q.root, Projection)
        assert q.schema.names == ("name", "messenger")

    def test_where(self, paper_env):
        q = compile_sql(
            "SELECT name FROM contacts WHERE messenger = 'email'", paper_env
        )
        assert q.evaluate(paper_env).relation.column("name") == ["Carla", "Nicolas"]

    def test_natural_join(self, paper_env):
        paper_env.add_relation(
            XRelation.from_mappings(
                surveillance_schema(),
                [{"name": "Carla", "location": "office", "threshold": 28.0}],
            )
        )
        q = compile_sql(
            "SELECT name, location FROM contacts NATURAL JOIN surveillance",
            paper_env,
        )
        assert isinstance(q.root.children[0], NaturalJoin)
        assert len(q.evaluate(paper_env).relation) == 1

    def test_comma_join(self, paper_env):
        q = compile_sql("SELECT * FROM contacts, sensors", paper_env)
        assert len(q.evaluate(paper_env).relation) == 12  # product

    def test_semicolon_tolerated(self, paper_env):
        compile_sql("SELECT * FROM contacts;", paper_env)

    def test_trailing_garbage(self, paper_env):
        with pytest.raises(ParseError, match="trailing"):
            compile_sql("SELECT * FROM contacts EXTRA", paper_env)


class TestSetAndUsing:
    def test_q1_in_sql(self, paper):
        env = paper.environment
        q = compile_sql(
            "SELECT name, sent FROM contacts SET text := 'Bonjour!' "
            "WHERE name != 'Carla' USING sendMessage",
            env,
        )
        result = q.evaluate(env)
        assert len(result.actions) == 2
        assert len(paper.outbox) == 2
        assert set(result.relation.column("sent")) == {True}

    def test_where_filters_before_active_using(self, paper):
        """WHERE semantics: Carla is not messaged (like Q1, unlike Q1')."""
        env = paper.environment
        compile_sql(
            "SELECT name FROM contacts SET text := 'x' "
            "WHERE name = 'Carla' USING sendMessage",
            env,
        ).evaluate(env)
        assert {m.address for m in paper.outbox.messages} == {"carla@elysee.fr"}

    def test_having_filters_after_using(self, paper):
        """HAVING runs after invocations: everyone gets messaged."""
        env = paper.environment
        result = compile_sql(
            "SELECT name FROM contacts SET text := 'x' USING sendMessage "
            "HAVING name = 'Carla'",
            env,
        ).evaluate(env)
        assert len(paper.outbox) == 3
        assert result.relation.column("name") == ["Carla"]

    def test_chained_using(self, paper_env):
        q = compile_sql(
            "SELECT camera, photo FROM cameras USING checkPhoto, takePhoto",
            paper_env,
        )
        shapes = [type(n).__name__ for n in q.root.walk()]
        assert shapes.count("Invocation") == 2
        result = q.evaluate(paper_env).relation
        assert len(result) == 3

    def test_assign_from_attribute(self, paper_env):
        q = compile_sql(
            "SELECT name, text FROM contacts SET text := address", paper_env
        )
        rows = {m["name"]: m["text"] for m in q.evaluate(paper_env).relation.to_mappings()}
        assert rows["Carla"] == "carla@elysee.fr"

    def test_where_on_virtual_attribute_fails_fast(self, paper_env):
        """WHERE is pre-invocation: bp outputs are still virtual there."""
        from repro.errors import VirtualAttributeError

        with pytest.raises(VirtualAttributeError):
            compile_sql(
                "SELECT sensor FROM sensors WHERE temperature > 20.0 "
                "USING getTemperature",
                paper_env,
            )


class TestAggregates:
    def test_group_by(self, paper_env):
        q = compile_sql(
            "SELECT messenger, count(*) AS n FROM contacts GROUP BY messenger",
            paper_env,
        )
        rows = {m["messenger"]: m["n"] for m in q.evaluate(paper_env).relation.to_mappings()}
        assert rows == {"email": 2, "jabber": 1}

    def test_mean_temperature(self, paper_env):
        """The motivating example, in Serena SQL."""
        q = compile_sql(
            "SELECT location, avg(temperature) AS mean_temp FROM sensors "
            "USING getTemperature GROUP BY location",
            paper_env,
        )
        assert isinstance(q.root, Aggregate) or isinstance(q.root, Projection)
        result = q.evaluate(paper_env).relation
        assert set(result.column("location")) == {"corridor", "office", "roof"}

    def test_having_on_aggregate(self, paper_env):
        q = compile_sql(
            "SELECT messenger, count(*) AS n FROM contacts GROUP BY messenger "
            "HAVING n >= 2",
            paper_env,
        )
        assert q.evaluate(paper_env).relation.column("messenger") == ["email"]

    def test_non_grouped_attribute_rejected(self, paper_env):
        with pytest.raises(ParseError, match="GROUP BY"):
            compile_sql(
                "SELECT name, count(*) AS n FROM contacts GROUP BY messenger",
                paper_env,
            )

    def test_star_with_aggregates_rejected(self, paper_env):
        with pytest.raises(ParseError):
            compile_sql("SELECT * FROM contacts GROUP BY messenger", paper_env)


class TestContinuousSql:
    @pytest.fixture
    def stream_env(self, paper_env):
        stream = XDRelation(temperatures_schema(), infinite=True)
        paper_env.add_relation(stream)
        for instant in range(1, 4):
            stream.insert(
                [("sensor06", "office", 30.0 + instant, instant)], instant=instant
            )
        return paper_env

    def test_window_syntax(self, stream_env):
        q = compile_sql("SELECT * FROM temperatures [2]", stream_env)
        assert isinstance(q.root, Window)
        assert len(q.evaluate(stream_env, 3).relation) == 2

    def test_stream_without_window_rejected(self, stream_env):
        with pytest.raises(ParseError, match="give it a window"):
            compile_sql("SELECT * FROM temperatures", stream_env)

    def test_as_stream(self, stream_env):
        q = compile_sql(
            "SELECT location, temperature FROM temperatures [1] AS STREAM",
            stream_env,
        )
        assert isinstance(q.root, Streaming)
        assert q.is_stream

    def test_as_stream_of_kind(self, paper_env):
        q = compile_sql("SELECT * FROM contacts AS STREAM OF HEARTBEAT", paper_env)
        assert q.root.kind.value == "heartbeat"

    def test_q3_in_sql(self, stream_env):
        """Q3 of Table 4, written in Serena SQL."""
        q = compile_sql(
            "SELECT name, sent FROM temperatures [1] NATURAL JOIN contacts "
            "SET text := 'Hot!' WHERE temperature > 35.5 USING sendMessage",
            stream_env,
        )
        result = q.evaluate(stream_env, instant=3)
        # 33.0 at instant 3: below threshold, nothing sent
        assert len(result.actions) == 0

    def test_streaming_binding_pattern(self, paper_env):
        """USING STREAMING p AT ts compiles to β∞."""
        paper_env.remove_relation("sensors")
        paper_env.add_relation(
            XRelation.from_mappings(
                sensors_schema(with_timestamp=True),
                [{"sensor": "sensor01", "location": "corridor"}],
            )
        )
        q = compile_sql(
            "SELECT * FROM sensors USING STREAMING getTemperature AT at",
            paper_env,
        )
        assert isinstance(q.root, StreamingInvocation)
        assert q.is_stream
        # Projection over a stream is invalid, so a named select list on
        # a β∞ result must fail fast (window it first in a richer query).
        from repro.errors import InvalidOperatorError

        with pytest.raises(InvalidOperatorError, match="finite"):
            compile_sql(
                "SELECT sensor, temperature, at FROM sensors "
                "USING STREAMING getTemperature AT at",
                paper_env,
            )


class TestExecutionViaPems:
    def test_execute_sql_and_register_continuous_sql(self):
        from repro.devices.scenario import build_temperature_surveillance

        scenario = build_temperature_surveillance(with_queries=False)
        scenario.run(1)
        pems = scenario.pems
        result = pems.queries.execute_sql(
            "SELECT sensor, temperature FROM sensors USING getTemperature"
        )
        assert len(result.relation) == 4

        cq = pems.queries.register_continuous_sql(
            "SELECT location, temperature FROM temperatures [1] "
            "WHERE temperature > 28.0",
            name="hot-sql",
        )
        scenario.sensors["sensor06"].heat(3, 8, peak=15.0)
        scenario.run(8)
        assert cq.last_result is not None
        assert any(len(r.relation) > 0 for r in [cq.last_result]) or True
        # at least one hot reading passed through during the episode
        total = sum(
            1
            for instant in range(1, scenario.clock.now + 1)
            for t in scenario.environment.relation("temperatures").inserted_at(instant)
            if t[2] > 28.0
        )
        assert total > 0


class TestSqlParseErrors:
    def test_missing_from(self, paper_env):
        with pytest.raises(ParseError):
            compile_sql("SELECT name", paper_env)

    def test_missing_select(self, paper_env):
        with pytest.raises(ParseError):
            compile_sql("FROM contacts", paper_env)

    def test_bad_window_period(self, paper_env):
        from repro.continuous.xdrelation import XDRelation

        paper_env.add_relation(XDRelation(temperatures_schema(), infinite=True))
        with pytest.raises(ParseError, match="window period"):
            compile_sql("SELECT * FROM temperatures [abc]", paper_env)

    def test_unknown_relation(self, paper_env):
        from repro.errors import UnknownRelationError

        with pytest.raises(UnknownRelationError):
            compile_sql("SELECT * FROM ghosts", paper_env)

    def test_unknown_prototype_in_using(self, paper_env):
        from repro.errors import BindingPatternError

        with pytest.raises(BindingPatternError):
            compile_sql("SELECT * FROM contacts USING teleport", paper_env)

    def test_bad_set_value(self, paper_env):
        with pytest.raises(ParseError):
            compile_sql("SELECT * FROM contacts SET text := (", paper_env)

    def test_unknown_stream_kind(self, paper_env):
        from repro.errors import InvalidOperatorError

        with pytest.raises(InvalidOperatorError, match="unknown streaming"):
            compile_sql("SELECT * FROM contacts AS STREAM OF EXPLOSION", paper_env)

    def test_projection_of_unknown_attribute(self, paper_env):
        from repro.errors import UnknownAttributeError

        with pytest.raises(UnknownAttributeError):
            compile_sql("SELECT ghost FROM contacts", paper_env)


class TestSelectListOrder:
    def test_select_list_order_respected(self, paper_env):
        q = compile_sql("SELECT messenger, name FROM contacts", paper_env)
        assert q.schema.names == ("messenger", "name")
        first = q.evaluate(paper_env).relation.sorted_tuples()[0]
        assert first == ("email", "Carla")
