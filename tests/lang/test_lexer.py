"""Tests for the shared tokenizer."""

import pytest

from repro.errors import ParseError
from repro.lang.lexer import TokenStream, tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text) if t.kind != "eof"]


class TestTokenize:
    def test_identifiers_and_punctuation(self):
        assert kinds("project[name](r)") == [
            ("ident", "project"),
            ("punct", "["),
            ("ident", "name"),
            ("punct", "]"),
            ("punct", "("),
            ("ident", "r"),
            ("punct", ")"),
        ]

    def test_numbers(self):
        assert kinds("35.5 5 -2 1e3") == [
            ("number", "35.5"),
            ("number", "5"),
            ("number", "-2"),
            ("number", "1e3"),
        ]

    def test_strings_with_escapes(self):
        assert kinds("'Bonjour!' 'O''Brien'") == [
            ("string", "Bonjour!"),
            ("string", "O'Brien"),
        ]

    def test_unterminated_string(self):
        with pytest.raises(ParseError, match="unterminated"):
            tokenize("'oops")

    def test_multi_char_punctuation(self):
        assert kinds("a := b -> c <= d >= e != f") == [
            ("ident", "a"),
            ("punct", ":="),
            ("ident", "b"),
            ("punct", "->"),
            ("ident", "c"),
            ("punct", "<="),
            ("ident", "d"),
            ("punct", ">="),
            ("ident", "e"),
            ("punct", "!="),
            ("ident", "f"),
        ]

    def test_comments_skipped(self):
        assert kinds("a -- comment here\nb") == [("ident", "a"), ("ident", "b")]

    def test_illegal_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("a @ b")

    def test_line_numbers(self):
        tokens = tokenize("a\nb")
        assert tokens[0].line == 1
        assert tokens[1].line == 2


class TestTokenStream:
    def test_expectations(self):
        stream = TokenStream(tokenize("SERVICE email"))
        stream.expect_keyword("service")  # case-insensitive
        assert stream.expect_ident().value == "email"
        assert stream.at_end()

    def test_expect_failure_reports_position(self):
        stream = TokenStream(tokenize("abc"))
        with pytest.raises(ParseError, match="expected ';'"):
            stream.expect_punct(";")

    def test_accept_returns_false_without_consuming(self):
        stream = TokenStream(tokenize("abc"))
        assert not stream.accept_punct(",")
        assert stream.current.value == "abc"

    def test_peek(self):
        stream = TokenStream(tokenize("a b"))
        assert stream.peek().value == "b"
        assert stream.current.value == "a"
