"""Tests for the plan pretty-printers."""

from repro.algebra import col, scan
from repro.lang import explain, to_math, to_sal


class TestToSal:
    def test_matches_render(self, paper_env):
        q = scan(paper_env, "contacts").select(col("name").eq("Carla")).query()
        assert to_sal(q) == q.root.render()

    def test_accepts_bare_operators(self, paper_env):
        node = scan(paper_env, "contacts").node
        assert to_sal(node) == "contacts"


class TestToMath:
    def test_table4_style(self, paper_env):
        q = (
            scan(paper_env, "contacts")
            .select(col("name").ne("Carla"))
            .assign("text", "Bonjour!")
            .invoke("sendMessage")
            .query()
        )
        text = to_math(q)
        assert text == (
            "β[sendMessage[messenger]](α[text:='Bonjour!']"
            "(σ[name != 'Carla'](contacts)))"
        )

    def test_join_symbol_lists_keys(self, paper_env):
        q = scan(paper_env, "contacts").join(scan(paper_env, "sensors")).query()
        assert "⋈[×]" in to_math(q)  # no common real attrs: product

    def test_leaf_is_name(self, paper_env):
        assert to_math(scan(paper_env, "contacts").node) == "contacts"


class TestExplain:
    def test_shows_schemas_with_virtual_stars(self, paper_env):
        q = scan(paper_env, "contacts").query()
        text = explain(q)
        assert "text*" in text and "sent*" in text
        assert "BP×1" in text

    def test_marks_streams(self, paper_env):
        from repro.continuous.xdrelation import XDRelation
        from repro.devices.scenario import temperatures_schema

        paper_env.add_relation(XDRelation(temperatures_schema(), infinite=True))
        q = scan(paper_env, "temperatures").window(1).query()
        text = explain(q)
        assert "[stream]" in text
        lines = text.splitlines()
        assert lines[0].startswith("W[1]")
        assert not lines[0].endswith("[stream]")  # the window is finite

    def test_indentation_follows_depth(self, paper_env):
        q = (
            scan(paper_env, "contacts")
            .select(col("name").eq("Carla"))
            .project("name")
            .query()
        )
        lines = explain(q).splitlines()
        assert lines[0].startswith("π")
        assert lines[1].startswith("  σ")
        assert lines[2].startswith("    scan")


class TestToDot:
    def test_digraph_structure(self, paper_env):
        from repro.lang import to_dot

        q = (
            scan(paper_env, "contacts")
            .select(col("name").eq("Carla"))
            .project("name")
            .query()
        )
        dot = to_dot(q)
        assert dot.startswith("digraph plan {")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == 2  # scan→σ, σ→π
        assert "π[name]" in dot
        assert "text*" in dot  # virtual attributes starred in labels

    def test_custom_name_and_quote_escaping(self, paper_env):
        from repro.lang import to_dot

        q = scan(paper_env, "contacts").select(col("name").eq('Ca"rla')).query()
        dot = to_dot(q, name="g")
        assert "digraph g {" in dot
        assert '"Ca"rla"' not in dot  # quotes escaped to keep dot valid
