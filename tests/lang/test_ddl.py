"""Tests for the Serena DDL (Tables 1–2)."""

import pytest

from repro.continuous.time import VirtualClock
from repro.continuous.xdrelation import XDRelation
from repro.errors import ParseError, UnknownPrototypeError
from repro.lang.ddl import ServiceDeclaration, parse_ddl
from repro.model.environment import PervasiveEnvironment
from repro.pems.table_manager import ExtendedTableManager

TABLE1_DDL = """
PROTOTYPE sendMessage( address STRING, text STRING ) : ( sent BOOLEAN ) ACTIVE;
PROTOTYPE checkPhoto( area STRING ) : ( quality INTEGER, delay REAL );
PROTOTYPE takePhoto( area STRING, quality INTEGER ) : ( photo BLOB );
PROTOTYPE getTemperature( ) : ( temperature REAL );
SERVICE email IMPLEMENTS sendMessage;
SERVICE jabber IMPLEMENTS sendMessage;
SERVICE camera01 IMPLEMENTS checkPhoto, takePhoto;
SERVICE camera02 IMPLEMENTS checkPhoto, takePhoto;
SERVICE webcam07 IMPLEMENTS checkPhoto, takePhoto;
SERVICE sensor01 IMPLEMENTS getTemperature;
SERVICE sensor06 IMPLEMENTS getTemperature;
SERVICE sensor07 IMPLEMENTS getTemperature;
SERVICE sensor22 IMPLEMENTS getTemperature;
"""

TABLE2_DDL = """
EXTENDED RELATION contacts (
    name STRING,
    address STRING,
    text STRING VIRTUAL,
    messenger SERVICE,
    sent BOOLEAN VIRTUAL
) USING BINDING PATTERNS (
    sendMessage[messenger] ( address, text ) : ( sent )
);
EXTENDED RELATION cameras (
    camera SERVICE,
    area STRING,
    quality INTEGER VIRTUAL,
    delay REAL VIRTUAL,
    photo BLOB VIRTUAL
) USING BINDING PATTERNS (
    checkPhoto[camera] ( area ) : ( quality, delay ),
    takePhoto[camera] ( area, quality ) : ( photo )
);
"""


@pytest.fixture
def tables():
    return ExtendedTableManager(PervasiveEnvironment(), VirtualClock())


class TestTable1:
    def test_prototypes_and_services_parse(self, tables):
        results = tables.execute_ddl(TABLE1_DDL)
        assert len(results) == 13
        env = tables.environment
        assert env.prototype("sendMessage").active
        assert not env.prototype("takePhoto").active
        assert env.prototype("getTemperature").input_schema.arity == 0
        declarations = [r for r in results if isinstance(r, ServiceDeclaration)]
        assert len(declarations) == 9
        camera = next(d for d in declarations if d.reference == "camera01")
        assert camera.prototype_names == ("checkPhoto", "takePhoto")

    def test_service_requires_declared_prototype(self, tables):
        with pytest.raises(UnknownPrototypeError):
            tables.execute_ddl("SERVICE rogue IMPLEMENTS teleport;")


class TestTable2:
    def test_extended_relations_created(self, tables):
        tables.execute_ddl(TABLE1_DDL)
        results = tables.execute_ddl(TABLE2_DDL)
        assert all(isinstance(r, XDRelation) for r in results)
        contacts = tables.environment.schema("contacts")
        assert contacts.virtual_names == {"text", "sent"}
        assert contacts.binding_patterns[0].service_attribute == "messenger"
        cameras = tables.environment.schema("cameras")
        assert len(cameras.binding_patterns) == 2

    def test_round_trip_with_describe(self, tables):
        """DDL → schema → describe → DDL again produces the same schema."""
        tables.execute_ddl(TABLE1_DDL)
        tables.execute_ddl(TABLE2_DDL)
        text = tables.environment.schema("contacts").describe() + ";"
        fresh = ExtendedTableManager(PervasiveEnvironment(), VirtualClock())
        fresh.execute_ddl(TABLE1_DDL)
        fresh.execute_ddl(text)
        assert fresh.environment.schema("contacts").compatible(
            tables.environment.schema("contacts")
        )

    def test_stream_variant(self, tables):
        results = tables.execute_ddl(
            "EXTENDED STREAM temps ( sensor SERVICE, temperature REAL );"
        )
        (stream,) = results
        assert stream.infinite

    def test_binding_pattern_inputs_checked(self, tables):
        tables.execute_ddl(TABLE1_DDL)
        bad = """
        EXTENDED RELATION broken (
            messenger SERVICE,
            text STRING VIRTUAL,
            sent BOOLEAN VIRTUAL
        ) USING BINDING PATTERNS (
            sendMessage[messenger] ( text ) : ( sent )
        );
        """
        with pytest.raises(ParseError, match="declared inputs"):
            tables.execute_ddl(bad)

    def test_binding_pattern_outputs_checked(self, tables):
        tables.execute_ddl(TABLE1_DDL)
        bad = """
        EXTENDED RELATION broken (
            address STRING,
            messenger SERVICE,
            text STRING VIRTUAL,
            sent BOOLEAN VIRTUAL
        ) USING BINDING PATTERNS (
            sendMessage[messenger] ( address, text ) : ( )
        );
        """
        with pytest.raises(ParseError, match="declared outputs"):
            tables.execute_ddl(bad)


class TestParseErrors:
    def test_unknown_statement(self):
        with pytest.raises(ParseError, match="expected PROTOTYPE"):
            parse_ddl("DROP TABLE x;")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_ddl("PROTOTYPE p( ) : ( x REAL )")

    def test_unknown_type(self):
        from repro.errors import TypingError

        with pytest.raises(TypingError):
            parse_ddl("PROTOTYPE p( ) : ( x VARCHAR );")

    def test_comments_allowed(self, tables):
        tables.execute_ddl(
            "-- the temperature prototype\n"
            "PROTOTYPE getTemperature( ) : ( temperature REAL );"
        )
        assert tables.environment.prototype("getTemperature")
