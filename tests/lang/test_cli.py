"""Tests for the Serena shell (repro.cli) and DDL data statements."""

import io

import pytest

from repro.cli import SerenaShell, split_statements
from repro.devices.prototypes import STANDARD_PROTOTYPES
from repro.pems.pems import PEMS


@pytest.fixture
def shell():
    out = io.StringIO()
    pems = PEMS()
    for prototype in STANDARD_PROTOTYPES:
        pems.environment.declare_prototype(prototype)
    return SerenaShell(pems, out), out


def output_of(pair):
    shell, out = pair
    return out.getvalue()


class TestSplitStatements:
    def test_dot_commands_are_lines(self):
        assert split_statements(".tick 3\n.show contacts\n") == [
            ".tick 3",
            ".show contacts",
        ]

    def test_multiline_statement_until_semicolon(self):
        text = "SELECT *\nFROM contacts;\n.tick"
        assert split_statements(text) == ["SELECT *\nFROM contacts;", ".tick"]

    def test_semicolon_inside_string_ignored(self):
        text = "INSERT INTO t VALUES ('a;b');"
        assert split_statements(text) == [text]

    def test_comments_stripped(self):
        assert split_statements("-- hello\n.tick -- trailing\n") == [".tick"]

    def test_multiple_statements_one_line(self):
        assert split_statements("SELECT a FROM t; SELECT b FROM t;") == [
            "SELECT a FROM t;",
            "SELECT b FROM t;",
        ]

    def test_unterminated_tail_kept(self):
        assert split_statements("SELECT * FROM t") == ["SELECT * FROM t"]


class TestShellStatements:
    def test_ddl_and_insert_and_select(self, shell):
        sh, out = shell
        sh.execute(
            "EXTENDED RELATION people ( name STRING, age INTEGER );"
        )
        sh.execute("INSERT INTO people VALUES ('Ada', 36), ('Alan', 41);")
        sh.execute("SELECT name FROM people WHERE age > 40;")
        text = out.getvalue()
        assert "ok:" in text
        assert "Alan" in text
        assert "Ada" not in text.split("| name")[-1]

    def test_delete_from(self, shell):
        sh, out = shell
        sh.execute("EXTENDED RELATION people ( name STRING );")
        sh.execute("INSERT INTO people VALUES ('Ada');")
        sh.pems.tick()
        sh.execute("DELETE FROM people VALUES ('Ada');")
        sh.execute("SELECT * FROM people;")
        assert "Ada" not in out.getvalue().rsplit("people", 1)[-1]

    def test_register_and_result(self, shell):
        sh, out = shell
        sh.execute("EXTENDED RELATION people ( name STRING );")
        sh.execute("REGISTER watch AS SELECT * FROM people;")
        sh.execute(".tick 2")
        sh.execute(".result watch")
        sh.execute(".queries")
        text = out.getvalue()
        assert "registered continuous query 'watch'" in text
        assert "watch: people" in text or "watch: project" in text

    def test_register_usage_error(self, shell):
        sh, out = shell
        sh.execute("REGISTER broken SELECT * FROM x;")
        assert "usage: REGISTER" in out.getvalue()

    def test_errors_are_reported_not_raised(self, shell):
        sh, out = shell
        sh.execute("SELECT * FROM ghost;")
        assert "error:" in out.getvalue()

    def test_unrecognized_statement(self, shell):
        sh, out = shell
        sh.execute("FROBNICATE;")
        assert "unrecognized statement" in out.getvalue()

    def test_unknown_command(self, shell):
        sh, out = shell
        sh.execute(".frobnicate")
        assert "unknown command" in out.getvalue()


class TestDotCommands:
    def test_catalog(self, shell):
        sh, out = shell
        sh.execute(".catalog")
        assert "-- Prototypes --" in out.getvalue()

    def test_show(self, shell):
        sh, out = shell
        sh.execute("EXTENDED RELATION people ( name STRING );")
        sh.execute("INSERT INTO people VALUES ('Ada');")
        sh.execute(".show people")
        assert "Ada" in out.getvalue()

    def test_tick(self, shell):
        sh, out = shell
        sh.execute(".tick 5")
        assert "now at instant 5" in out.getvalue()
        assert sh.pems.clock.now == 5

    def test_explain(self, shell):
        sh, out = shell
        sh.execute("EXTENDED RELATION people ( name STRING );")
        sh.execute(".explain SELECT name FROM people")
        assert "scan(people)" in out.getvalue()

    def test_sal(self, shell):
        sh, out = shell
        sh.execute("EXTENDED RELATION people ( name STRING );")
        sh.execute("INSERT INTO people VALUES ('Ada');")
        sh.execute(".sal select[name = 'Ada'](people)")
        assert "Ada" in out.getvalue()

    def test_demo_temperature(self, shell):
        sh, out = shell
        sh.execute(".demo temperature")
        sh.execute(".tick 2")
        sh.execute(".show sensors")
        text = out.getvalue()
        assert "loaded the temperature scenario" in text
        assert "sensor06" in text

    def test_demo_usage(self, shell):
        sh, out = shell
        sh.execute(".demo spaceship")
        assert "usage: .demo" in out.getvalue()

    def test_quit_stops(self, shell):
        sh, out = shell
        assert sh.running
        sh.execute(".quit")
        assert not sh.running

    def test_run_script_stops_at_quit(self, shell):
        sh, out = shell
        sh.run_script(".tick 1\n.quit\n.tick 5\n")
        assert sh.pems.clock.now == 1

    def test_help(self, shell):
        sh, out = shell
        sh.execute(".help")
        assert ".catalog" in out.getvalue()


class TestOptimizeAndStats:
    def test_stats_lists_relations_and_streams(self, shell):
        sh, out = shell
        sh.execute(".demo temperature")
        sh.execute(".stats")
        text = out.getvalue()
        assert "contacts: 4 tuples" in text
        assert "temperatures: (stream — not profiled)" in text

    def test_optimize_shows_both_plans(self, shell):
        sh, out = shell
        sh.execute(".demo temperature")
        sh.execute(".tick 1")
        sh.execute(
            ".optimize SELECT sensor, temperature FROM sensors "
            "USING getTemperature HAVING location = 'office'"
        )
        text = out.getvalue()
        assert "-- original plan --" in text
        assert "-- optimized plan --" in text
        assert "plans explored" in text

    def test_stats_empty_environment(self, shell):
        sh, out = shell
        sh.execute(".stats")
        assert "(no relations)" in out.getvalue()


class TestRuleCommand:
    def test_rule_evaluates(self, shell):
        sh, out = shell
        sh.execute(".demo temperature")
        sh.execute(".tick 1")
        sh.execute(".rule who(n) :- contacts(n, _, _, 'email', _);")
        text = out.getvalue()
        assert "Carla" in text and "Nicolas" in text
        assert "Francois" not in text.split("who")[-1]

    def test_rule_errors_reported(self, shell):
        sh, out = shell
        sh.execute(".rule broken(x) :- nothing(x);")
        assert "error:" in out.getvalue()


class TestMainEntry:
    def test_main_executes_script_file(self, tmp_path, capsys):
        from repro.cli import main

        script = tmp_path / "session.serena"
        script.write_text(
            "EXTENDED RELATION people ( name STRING );\n"
            "INSERT INTO people VALUES ('Ada');\n"
            "SELECT * FROM people;\n",
            encoding="utf-8",
        )
        assert main([str(script)]) == 0
        assert "Ada" in capsys.readouterr().out


class TestObservabilityCommands:
    @pytest.fixture
    def traced(self):
        from repro.devices.scenario import build_temperature_surveillance

        out = io.StringIO()
        scenario = build_temperature_surveillance(
            engine="shared", observe="full"
        )
        sh = SerenaShell(scenario.pems, out)
        sh.execute(".tick 3")
        return sh, out

    def test_analyze_all_registered_queries(self, traced):
        sh, out = traced
        sh.execute(".analyze")
        text = out.getvalue()
        assert "EXPLAIN ANALYZE alerts" in text
        assert "EXPLAIN ANALYZE cold-photos" in text
        assert "shared(refs=" in text

    def test_analyze_one_query(self, traced):
        sh, out = traced
        sh.execute(".analyze alerts")
        text = out.getvalue()
        assert "EXPLAIN ANALYZE alerts" in text
        assert "cold-photos" not in text
        assert "ticks=3" in text

    def test_analyze_unknown_query_reports_error(self, traced):
        sh, out = traced
        sh.execute(".analyze ghost")
        assert "error:" in out.getvalue()

    def test_analyze_without_queries(self, shell):
        sh, out = shell
        sh.execute(".analyze")
        assert "(no continuous queries registered)" in out.getvalue()

    def test_explain_physical(self, traced):
        sh, out = traced
        sh.execute(
            ".explain physical SELECT * FROM contacts WHERE name = 'Carla'"
        )
        text = out.getvalue()
        assert "scan(contacts)" in text
        assert "[ScanExec/row]" in text
        assert "private" in text  # the unregistered selection root
        assert "shared(refs=" in text  # the leased contacts scan below it

    def test_explain_physical_columnar(self, traced):
        sh, out = traced
        sh.execute(
            ".explain physical columnar "
            "SELECT * FROM contacts WHERE name = 'Carla'"
        )
        text = out.getvalue()
        assert "[ColumnarScanExec/columnar]" in text
        assert "[ColumnarSelectionExec/columnar]" in text

    def test_explain_usage(self, shell):
        sh, out = shell
        sh.execute(".explain")
        assert (
            "usage: .explain [physical [row|columnar] | federated]"
            in out.getvalue()
        )

    def test_metrics_prometheus_text(self, traced):
        sh, out = traced
        sh.execute(".metrics")
        text = out.getvalue()
        assert "serena_ticks_total 3" in text
        assert "# TYPE serena_tick_seconds histogram" in text
        assert "serena_invocations_total" in text

    def test_metrics_json(self, traced):
        import json

        sh, out = traced
        sh.execute(".metrics json")
        payload = out.getvalue().split("now at instant 3\n", 1)[1]
        snapshot = json.loads(payload)
        assert snapshot["mode"] == "full"
        assert "serena_ticks_total" in snapshot["metrics"]

    def test_metrics_usage(self, traced):
        sh, out = traced
        sh.execute(".metrics yaml")
        assert "usage: .metrics [json]" in out.getvalue()

    def test_trace_renders_span_tree(self, traced):
        sh, out = traced
        sh.execute(".trace 50")
        text = out.getvalue()
        assert "τ=3 tick" in text
        assert "queries.tick" in text
        assert "query=alerts" in text

    def test_trace_json_lines_parse(self, traced):
        import json

        sh, out = traced
        sh.execute(".trace json")
        payload = out.getvalue().split("now at instant 3\n", 1)[1]
        for line in payload.strip().splitlines():
            json.loads(line)

    def test_trace_disabled_without_full_mode(self, shell):
        sh, out = shell  # plain PEMS() defaults to metrics mode
        sh.execute(".trace")
        assert "tracing is off" in out.getvalue()

    def test_trace_usage(self, traced):
        sh, out = traced
        sh.execute(".trace lots")
        assert "usage: .trace [n|json]" in out.getvalue()

    def test_help_lists_observability_commands(self, shell):
        sh, out = shell
        sh.execute(".help")
        text = out.getvalue()
        assert ".analyze" in text
        assert ".metrics" in text
        assert ".trace" in text


class TestProfileCommand:
    def test_profile_shows_counts_and_result(self, shell):
        sh, out = shell
        sh.execute(".demo temperature")
        sh.execute(".tick 1")
        sh.execute(".profile SELECT sensor FROM sensors")
        text = out.getvalue()
        assert "tuples]" in text
        assert "service invocations: 0" in text
        assert "sensor06" in text


class TestCityCommands:
    def test_demo_city(self, shell):
        sh, out = shell
        sh.execute(".demo city")
        sh.execute(".tick 2")
        sh.execute(".result zone-load")
        text = out.getvalue()
        assert "loaded the city scenario" in text
        assert "avg_load" in text

    def test_demo_city_federated_shards(self, shell):
        sh, out = shell
        sh.execute(".demo city federated")
        sh.execute(".tick 1")
        sh.execute(".shards")
        text = out.getvalue()
        assert "zones, lockstep" in text
        assert "pruned" in text

    def test_city_loads_config_file(self, shell, tmp_path):
        import json

        sh, out = shell
        path = tmp_path / "tiny.json"
        path.write_text(
            json.dumps(
                {"name": "tiny", "zones": ["a"], "meters_per_zone": 2}
            )
        )
        sh.execute(f".city {path}")
        sh.execute(".tick 1")
        text = out.getvalue()
        assert "built city 'tiny'" in text
        assert "topology digest" in text

    def test_city_usage_and_missing_file(self, shell):
        sh, out = shell
        sh.execute(".city")
        assert "usage: .city" in out.getvalue()
        sh.execute(".city /no/such/file.json")
        assert "error" in out.getvalue()
