"""Tests for the benchmark substrate: workloads, harness, reporting."""

import os

import pytest

from repro.bench.harness import RunStats, measure_run
from repro.bench.reporting import Report, format_table
from repro.bench.workloads import build_surveillance_workload, random_environment


class TestSurveillanceWorkload:
    def test_shape(self):
        scenario = build_surveillance_workload(
            num_sensors=12, num_contacts=3, num_cameras=2, num_locations=4
        )
        assert len(scenario.sensors) == 12
        assert len(scenario.cameras) == 2
        scenario.run(1)
        env = scenario.environment
        assert len(env.instantaneous("sensors", 1)) == 12
        assert len(env.instantaneous("contacts", 1)) == 3
        assert len(env.instantaneous("surveillance", 1)) == 4

    def test_hot_fraction_drives_alerts(self):
        cold = build_surveillance_workload(num_sensors=10, hot_fraction=0.0)
        cold.run(5)
        assert len(cold.outbox) == 0
        hot = build_surveillance_workload(num_sensors=10, hot_fraction=1.0)
        hot.run(5)
        assert len(hot.outbox) > 0

    def test_deterministic(self):
        a = build_surveillance_workload(num_sensors=6)
        b = build_surveillance_workload(num_sensors=6)
        a.run(5)
        b.run(5)
        assert len(a.outbox) == len(b.outbox)
        assert len(a.environment.relation("temperatures")) == len(
            b.environment.relation("temperatures")
        )


class TestRandomEnvironment:
    def test_items_and_categories(self):
        handle = random_environment(seed=3, num_items=5)
        env = handle.environment
        assert len(env.instantaneous("items", 0)) <= 5  # duplicates may collapse
        assert len(env.instantaneous("categories", 0)) == 3

    def test_seeded_reproducibility(self):
        a = random_environment(seed=3).environment.instantaneous("items", 0)
        b = random_environment(seed=3).environment.instantaneous("items", 0)
        assert a == b
        c = random_environment(seed=4).environment.instantaneous("items", 0)
        assert a != c

    def test_active_prototype_logs_work(self):
        from repro.algebra import scan

        handle = random_environment(seed=0)
        env = handle.environment
        q = scan(env, "items").invoke("doWork").query()
        result = q.evaluate(env)
        assert len(result.actions) > 0
        assert len(handle.work_log) == len(env.instantaneous("items", 0))


class TestHarness:
    def test_measure_run_counts(self):
        scenario = build_surveillance_workload(num_sensors=5, hot_fraction=0.4)
        scenario.run(1)
        stats = measure_run(scenario, 10)
        assert stats.instants == 10
        assert stats.stream_tuples == 50
        assert stats.invocations >= 50  # sensor reads + sends
        assert len(stats.tick_seconds) == 10
        assert stats.ticks_per_second > 0
        assert stats.mean_tick_ms > 0
        assert stats.percentile_tick_ms(0.95) >= stats.percentile_tick_ms(0.05)

    def test_empty_stats(self):
        stats = RunStats(0)
        assert stats.mean_tick_ms == 0.0
        assert stats.percentile_tick_ms(0.5) == 0.0
        assert stats.invocations_per_instant == 0.0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "n"], [["alpha", 1], ["b", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert set(lines[2]) <= {"-", " "}
        assert lines[3].startswith("alpha")

    def test_format_table_floats(self):
        text = format_table(["x"], [[3.14159]])
        assert "3.142" in text

    def test_format_table_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_report_emit_writes_file(self, tmp_path, capsys):
        report = Report("unit-test-report", directory=str(tmp_path))
        report.table(["k"], [["v"]], title="t")
        report.add("extra section")
        text = report.emit()
        assert "== unit-test-report ==" in text
        assert "extra section" in text
        printed = capsys.readouterr().out
        assert "unit-test-report" in printed
        path = os.path.join(str(tmp_path), "unit-test-report.txt")
        with open(path, encoding="utf-8") as handle:
            assert handle.read().strip() == text.strip()
