"""Integration tests for the §5.2 'picture with a message' extension:
contacts with a virtual photo attribute and the sendPhotoMessage pattern,
fed by implicit realization from the takePhoto pipeline."""

import pytest

from repro.devices.prototypes import SEND_PHOTO_MESSAGE
from repro.devices.scenario import build_temperature_surveillance, contacts_schema


class TestContactsWithPhoto:
    def test_schema_shape(self):
        schema = contacts_schema(with_photo=True)
        assert "photo" in schema.virtual_names
        names = sorted(bp.prototype.name for bp in schema.binding_patterns)
        assert names == ["sendMessage", "sendPhotoMessage"]

    def test_default_schema_unchanged(self):
        schema = contacts_schema()
        assert "photo" not in schema
        assert len(schema.binding_patterns) == 1

    def test_prototype_shape(self):
        assert SEND_PHOTO_MESSAGE.active
        assert SEND_PHOTO_MESSAGE.input_names == {"address", "text", "photo"}


class TestPhotoAlertPipeline:
    @pytest.fixture
    def scenario(self):
        return build_temperature_surveillance(with_photo_messages=True)

    def test_photo_alerts_query_registered(self, scenario):
        assert "photo-alerts" in scenario.queries

    def test_cold_area_photo_reaches_the_manager(self, scenario):
        scenario.run(2)
        scenario.sensors["sensor06"].heat(4, 11, peak=-15.0)  # freeze the office
        scenario.run(12)
        photo_messages = [m for m in scenario.outbox.messages if m.photo]
        assert photo_messages, "no photo message sent"
        # The office manager is Carla; the photo is from the office camera.
        for message in photo_messages:
            assert message.address == "carla@elysee.fr"
            assert b"camera01|office" in message.photo
            assert message.text == "Cold area photo attached"

    def test_implicit_realization_feeds_the_binding_pattern(self, scenario):
        """In the registered plan, 'photo' is real before sendPhotoMessage
        although it is virtual in the contacts schema: the join realized it
        from the takePhoto output (Table 3d)."""
        plan = scenario.queries["photo-alerts"].query.root
        # the β(sendPhotoMessage) node's operand schema:
        operand = plan.children[0].schema
        assert "photo" in operand.real_names
        assert scenario.environment.schema("contacts").is_virtual("photo")

    def test_no_photo_messages_without_cold_episode(self, scenario):
        scenario.run(10)
        assert [m for m in scenario.outbox.messages if m.photo] == []

    def test_each_photo_sent_once(self, scenario):
        scenario.run(2)
        scenario.sensors["sensor06"].heat(4, 9, peak=-15.0)
        scenario.run(12)
        photo_messages = [m for m in scenario.outbox.messages if m.photo]
        keys = [(m.address, m.photo) for m in photo_messages]
        assert len(keys) == len(set(keys))
