"""Integration test: the full temperature surveillance scenario
(Section 5.2, first experiment)."""

import pytest

from repro.devices.scenario import build_temperature_surveillance


@pytest.fixture
def scenario():
    return build_temperature_surveillance()


class TestSteadyState:
    def test_no_alerts_at_ambient_temperatures(self, scenario):
        scenario.run(10)
        assert len(scenario.outbox) == 0

    def test_stream_fed_every_tick(self, scenario):
        scenario.run(5)
        stream = scenario.environment.relation("temperatures")
        assert len(stream) == 5 * 4  # 4 sensors

    def test_discovery_tables_populated(self, scenario):
        scenario.run(1)
        env = scenario.environment
        sensors = env.instantaneous("sensors", scenario.clock.now)
        assert len(sensors) == 4
        cameras = env.instantaneous("cameras", scenario.clock.now)
        assert len(cameras) == 3


class TestAlerting:
    def test_heating_office_alerts_its_manager(self, scenario):
        """Heat sensor06 (office): Carla (office manager) gets messages by
        email, nobody else does."""
        scenario.sensors["sensor06"].heat(3, 10, peak=15.0)  # 21 + 15 > 28
        scenario.run(12)
        assert len(scenario.outbox) > 0
        addresses = {m.address for m in scenario.outbox.messages}
        assert addresses == {"carla@elysee.fr"}
        channels = {m.channel for m in scenario.outbox.messages}
        assert channels == {"email"}

    def test_alert_only_above_threshold(self, scenario):
        """A mild warm-up below the 28°C threshold stays silent."""
        scenario.sensors["sensor06"].heat(3, 10, peak=4.0)  # max ≈ 25
        scenario.run(12)
        assert len(scenario.outbox) == 0

    def test_roof_manager_routed_via_jabber(self, scenario):
        scenario.sensors["sensor22"].heat(3, 10, peak=15.0)  # 15+15 > 26
        scenario.run(12)
        channels = {m.channel for m in scenario.outbox.messages}
        assert channels == {"jabber"}
        addresses = {m.address for m in scenario.outbox.messages}
        assert addresses == {"francois@im.gouv.fr"}

    def test_each_reading_alerts_once(self, scenario):
        """The continuous β invokes once per inserted stream tuple: the
        number of messages equals the number of actions (no re-sends for
        tuples cached across instants)."""
        scenario.sensors["sensor06"].heat(3, 6, peak=15.0)
        scenario.run(10)
        actions = scenario.queries["alerts"].action_log
        assert len(actions) > 0
        assert len(scenario.outbox) == len(actions)


class TestColdPhotos:
    def test_cold_roof_triggers_photos(self, scenario):
        scenario.sensors["sensor22"].heat(3, 10, peak=-10.0)  # 15−10 < 12
        scenario.run(12)
        emitted = scenario.queries["cold-photos"].emitted
        # webcam07 watches the roof but its nominal quality is 4 (< 5):
        # photos depend on the per-instant wiggle reaching 5.
        for _, values in emitted:
            relation = scenario.queries["cold-photos"].last_result.relation
            mapping = relation.schema.mapping_from_tuple(values)
            assert mapping["area"] == "roof"
            assert isinstance(mapping["photo"], bytes)

    def test_cold_office_photographed_by_office_camera(self, scenario):
        scenario.sensors["sensor06"].heat(3, 10, peak=-15.0)  # 21−15 < 12
        scenario.run(12)
        emitted = scenario.queries["cold-photos"].emitted
        assert len(emitted) > 0
        shots = scenario.cameras["camera01"].shots
        assert len(shots) > 0


class TestDynamicDiscovery:
    def test_hot_plugged_sensor_joins_running_queries(self, scenario):
        """Section 5.2: new sensors are integrated without stopping the
        continuous query execution."""
        scenario.run(3)
        new_sensor = scenario.add_sensor("sensor99", "office", base=21.0)
        new_sensor.heat(scenario.clock.now + 2, scenario.clock.now + 8, peak=15.0)
        scenario.run(12)
        sensors_table = scenario.environment.instantaneous(
            "sensors", scenario.clock.now
        )
        assert "sensor99" in sensors_table.column("sensor")
        # The new sensor's readings triggered alerts to the office manager.
        assert {m.address for m in scenario.outbox.messages} == {"carla@elysee.fr"}
        assert len(scenario.outbox) > 0

    def test_removed_sensor_stops_feeding(self, scenario):
        scenario.run(2)
        scenario.remove_sensor("sensor22")
        scenario.run(1)
        stream = scenario.environment.relation("temperatures")
        latest = stream.inserted_at(scenario.clock.now)
        sensors_in_latest = {t[0] for t in latest}
        assert "sensor22" not in sensors_in_latest
        assert len(sensors_in_latest) == 3


class TestAllThreeChannels:
    def test_corridor_alerts_go_by_email_and_sms(self, scenario):
        """§5.2: alert messages "by mail, instant message or SMS" — the
        corridor has two managers on different channels."""
        scenario.sensors["sensor01"].heat(3, 10, peak=15.0)  # 19+15 > 30
        scenario.run(12)
        assert len(scenario.outbox) > 0
        channels = {m.channel for m in scenario.outbox.messages}
        assert channels == {"email", "sms"}
        recipients = {m.address for m in scenario.outbox.messages}
        assert recipients == {"nicolas@elysee.fr", "+33600000007"}

    def test_scenario_covers_all_three_channels_overall(self, scenario):
        """Heating every location exercises email, jabber and SMS."""
        for reference in ("sensor01", "sensor06", "sensor22"):
            scenario.sensors[reference].heat(3, 10, peak=20.0)
        scenario.run(12)
        channels = {m.channel for m in scenario.outbox.messages}
        assert channels == {"email", "jabber", "sms"}
