"""Failure-injection integration tests: crashing devices, vanishing
services, bouncing messengers — the robustness behaviours a pervasive
system must survive."""

import pytest

from repro.algebra import col, scan
from repro.devices.scenario import build_temperature_surveillance
from repro.errors import UnknownServiceError


class TestSensorCrash:
    def test_crashed_local_erm_drains_the_sensor_table(self):
        scenario = build_temperature_surveillance()
        scenario.run(2)
        assert (
            len(scenario.environment.instantaneous("sensors", scenario.clock.now))
            == 4
        )
        scenario.pems.local_erms["field"].crash()
        scenario.run(12)  # past the lease
        sensors = scenario.environment.instantaneous("sensors", scenario.clock.now)
        assert len(sensors) == 0

    def test_queries_keep_running_through_the_crash(self):
        scenario = build_temperature_surveillance()
        scenario.run(2)
        scenario.pems.local_erms["field"].crash()
        scenario.run(12)
        # The alerts query is still registered and evaluating (on an empty
        # sensor set) — no exception, no alerts.
        assert scenario.queries["alerts"].last_result is not None
        assert scenario.queries["alerts"].last_result.instant == scenario.clock.now

    def test_recovery_restores_the_pipeline(self):
        scenario = build_temperature_surveillance()
        scenario.run(2)
        field = scenario.pems.local_erms["field"]
        field.crash()
        scenario.run(12)
        field.recover()
        scenario.run(4)
        sensors = scenario.environment.instantaneous("sensors", scenario.clock.now)
        assert len(sensors) == 4
        stream = scenario.environment.relation("temperatures")
        assert len(stream.inserted_at(scenario.clock.now)) == 4


class TestServiceVanishesMidQuery:
    def test_raise_policy_propagates(self, paper_env):
        q = scan(paper_env, "sensors").invoke("getTemperature").query()
        paper_env.unregister_service("sensor06")
        with pytest.raises(UnknownServiceError):
            q.evaluate(paper_env)

    def test_skip_policy_degrades_gracefully(self, paper_env):
        q = (
            scan(paper_env, "sensors")
            .invoke("getTemperature", on_error="skip")
            .query()
        )
        paper_env.unregister_service("sensor06")
        result = q.evaluate(paper_env)
        assert len(result.relation) == 3

    def test_skip_policy_on_handler_exception(self, paper_env):
        """A service whose method raises is skipped, not fatal."""
        from repro.devices.prototypes import GET_TEMPERATURE
        from repro.model.services import Service

        def broken(inputs, instant):
            raise RuntimeError("sensor on fire")

        paper_env.registry.register(
            Service("sensor06", {GET_TEMPERATURE: broken})
        )
        q = (
            scan(paper_env, "sensors")
            .invoke("getTemperature", on_error="skip")
            .query()
        )
        result = q.evaluate(paper_env)
        assert len(result.relation) == 3
        assert "sensor06" not in result.relation.column("sensor")


class TestMessengerFailures:
    def test_bounced_messages_have_sent_false(self):
        scenario = build_temperature_surveillance(messenger_failure_rate=1.0)
        scenario.sensors["sensor06"].heat(3, 8, peak=15.0)
        scenario.run(10)
        cq = scenario.queries["alerts"]
        assert len(scenario.outbox) > 0  # attempts recorded
        assert all(not m.delivered for m in scenario.outbox.messages)
        # The query result exposes the failure through 'sent' = false.
        sent_values = set()
        for result in [cq.last_result]:
            sent_values.update(result.relation.column("sent"))
        # last_result may be empty if the episode ended; look at actions.
        assert len(cq.action_log) == len(scenario.outbox)

    def test_actions_recorded_even_when_delivery_fails(self):
        """An action is the *invocation*, not its success: a bounced send
        still had a side effect attempt (Definition 8 does not inspect
        outputs)."""
        scenario = build_temperature_surveillance(messenger_failure_rate=1.0)
        scenario.sensors["sensor06"].heat(3, 6, peak=15.0)
        scenario.run(8)
        assert len(scenario.queries["alerts"].actions) > 0
