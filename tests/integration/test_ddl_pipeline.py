"""End-to-end DDL → catalog → SAL query → result pipeline on a PEMS."""

import pytest

from repro.devices.cameras import Camera
from repro.devices.messengers import Outbox, email_service
from repro.devices.sensors import TemperatureSensor
from repro.lang import parse_query
from repro.lang.ddl import ServiceDeclaration
from repro.pems.pems import PEMS

DDL = """
PROTOTYPE sendMessage( address STRING, text STRING ) : ( sent BOOLEAN ) ACTIVE;
PROTOTYPE checkPhoto( area STRING ) : ( quality INTEGER, delay REAL );
PROTOTYPE takePhoto( area STRING, quality INTEGER ) : ( photo BLOB );
PROTOTYPE getTemperature( ) : ( temperature REAL );

EXTENDED RELATION contacts (
    name STRING,
    address STRING,
    text STRING VIRTUAL,
    messenger SERVICE,
    sent BOOLEAN VIRTUAL
) USING BINDING PATTERNS (
    sendMessage[messenger] ( address, text ) : ( sent )
);

EXTENDED RELATION sensors (
    sensor SERVICE,
    location STRING,
    temperature REAL VIRTUAL
) USING BINDING PATTERNS (
    getTemperature[sensor] ( ) : ( temperature )
);

EXTENDED STREAM temperatures (
    sensor SERVICE,
    location STRING,
    temperature REAL,
    at TIMESTAMP
);

SERVICE email IMPLEMENTS sendMessage;
SERVICE sensor01 IMPLEMENTS getTemperature;
"""


class TestFullPipeline:
    def test_ddl_then_sal_query(self):
        pems = PEMS()
        results = pems.execute_ddl(DDL)
        declarations = [r for r in results if isinstance(r, ServiceDeclaration)]
        assert {d.reference for d in declarations} == {"email", "sensor01"}

        # Bind the declared services to simulated implementations.
        outbox = Outbox()
        local = pems.create_local_erm("gateway")
        local.register(email_service(outbox).as_service())
        local.register(TemperatureSensor("sensor01", "corridor").as_service())

        # Discovery fills the sensors table.
        pems.queries.register_discovery("getTemperature", "sensors", "sensor")
        pems.tables.insert(
            "contacts",
            [{"name": "Carla", "address": "carla@elysee.fr", "messenger": "email"}],
        )
        pems.run(1)

        # Query in SAL: read a temperature, then message Carla.
        temps = parse_query(
            "invoke[getTemperature, sensor](sensors)", pems.environment
        )
        result = pems.queries.execute(temps)
        assert len(result.relation) == 1

        send = parse_query(
            "invoke[sendMessage, messenger](assign[text := 'hello']("
            "select[name = 'Carla'](contacts)))",
            pems.environment,
        )
        result = pems.queries.execute(send)
        assert len(result.actions) == 1
        assert outbox.messages[0].text == "hello"

    def test_continuous_sal_query_on_ddl_stream(self):
        pems = PEMS()
        pems.execute_ddl(DDL)
        local = pems.create_local_erm("field")
        sensor = TemperatureSensor("sensor01", "corridor", base=20.0)
        local.register(sensor.as_service())
        pems.queries.register_discovery("getTemperature", "sensors", "sensor")

        from repro.devices.sensors import SensorStreamFeeder

        pems.add_stream_source(
            SensorStreamFeeder(
                pems.environment.registry,
                lambda rows: pems.tables.insert("temperatures", rows),
            )
        )
        hot = parse_query(
            "select[temperature > 30.0](window[1](temperatures))",
            pems.environment,
            "hot",
        )
        cq = pems.queries.register_continuous(hot)
        sensor.heat(2, 6, peak=20.0)
        pems.run(8)
        assert cq.last_result is not None
        # At the heating plateau the reading exceeded 30 °C at least once.
        total_matches = 0
        cq2 = pems.queries.continuous_query("hot")
        assert cq2 is cq
        # re-run a fresh window pass over history via the stream journal
        stream = pems.environment.relation("temperatures")
        for instant in range(1, pems.clock.now + 1):
            total_matches += sum(
                1 for t in stream.inserted_at(instant) if t[2] > 30.0
            )
        assert total_matches > 0
