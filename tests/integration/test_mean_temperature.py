"""Integration test for the motivating example's *mean* temperature alert
(Section 1.2: trigger "when the temperature (or the mean temperature)
exceeds a threshold") — aggregation over a window inside a continuous
query, composed with joins and an active invocation."""

import pytest

from repro.algebra import col, scan
from repro.continuous.continuous_query import ContinuousQuery
from repro.continuous.xdrelation import XDRelation
from repro.devices.scenario import surveillance_schema, temperatures_schema
from repro.model.relation import XRelation


@pytest.fixture
def rig(paper_env):
    stream = XDRelation(temperatures_schema(), infinite=True)
    paper_env.add_relation(stream)
    paper_env.add_relation(
        XRelation.from_mappings(
            surveillance_schema(),
            [{"name": "Carla", "location": "office", "threshold": 28.0}],
        )
    )
    query = (
        scan(paper_env, "temperatures")
        .window(3)
        .aggregate(["location"], ("avg", "temperature", "mean_temp"))
        .join(scan(paper_env, "surveillance"))
        .select(col("mean_temp").gt(col("threshold")))
        .join(scan(paper_env, "contacts"))
        .assign("text", "Mean too high!")
        .invoke("sendMessage", on_error="skip")
        .query("mean-alerts")
    )
    return paper_env, stream, ContinuousQuery(query, paper_env)


def feed(stream, instant, temps):
    rows = [
        (f"sensor{i:02d}", "office", t, instant) for i, t in enumerate(temps)
    ]
    stream.insert(rows, instant=instant)


class TestMeanTemperatureAlert:
    def test_single_spike_below_mean_threshold_stays_silent(self, rig):
        """One 35° reading among cool ones keeps the 3-instant mean below
        28° — no alert (this is exactly why one wants the mean)."""
        env, stream, cq = rig
        for instant, temps in enumerate([[20.0, 21.0], [35.0, 20.0], [21.0, 20.0]], 1):
            feed(stream, instant, temps)
            cq.evaluate_at(instant)
        assert len(cq.actions) == 0

    def test_sustained_heat_alerts(self, rig):
        env, stream, cq = rig
        for instant, temps in enumerate([[30.0, 31.0], [32.0, 33.0], [31.0, 30.0]], 1):
            feed(stream, instant, temps)
            cq.evaluate_at(instant)
        actions = cq.actions
        assert len(actions) == 1
        (action,) = actions
        assert action.inputs == ("carla@elysee.fr", "Mean too high!")

    def test_mean_is_over_the_window_not_the_instant(self, rig):
        env, stream, cq = rig
        # instants 1-2 cold, instant 3 very hot: window mean ≈ (20+20+44)/3
        feed(stream, 1, [20.0])
        cq.evaluate_at(1)
        feed(stream, 2, [20.0])
        cq.evaluate_at(2)
        feed(stream, 3, [44.0])
        result = cq.evaluate_at(3)
        assert len(result.actions) == 0  # mean 28.0 is not > 28.0
        feed(stream, 4, [44.0])
        result = cq.evaluate_at(4)  # window mean (20+44+44)/3 = 36
        assert len(result.actions) == 1

    def test_alert_routed_to_location_manager_only(self, rig):
        env, stream, cq = rig
        # Heat the roof — nobody manages it in this rig, so no alerts.
        stream.insert([("sensor22", "roof", 40.0, 1)], instant=1)
        cq.evaluate_at(1)
        assert len(cq.actions) == 0
