"""Integration test: the RSS feed scenario (Section 5.2, second
experiment)."""

import pytest

from repro.devices.scenario import build_rss_scenario


@pytest.fixture
def scenario():
    # Small window for fast tests; high rate so items appear quickly.
    return build_rss_scenario(keyword="Obama", window=10, rate=0.5, seed=2)


class TestMatchingNews:
    def test_only_keyword_items_match(self, scenario):
        scenario.run(30)
        cq = scenario.queries["matching-news"]
        result = cq.last_result.relation
        for title in result.column("title"):
            assert "Obama" in title

    def test_window_expires_old_items(self, scenario):
        """'one-hour-old news expired': a matching item leaves the result
        once it is older than the window."""
        cq = scenario.queries["matching-news"]
        first_match_instant = None
        for _ in range(60):
            scenario.run(1)
            if first_match_instant is None and len(cq.last_result.relation) > 0:
                matched = cq.last_result.relation.column("published")
                first_match_instant = min(matched)
        assert first_match_instant is not None
        # Run past the window: the early item must be gone.
        scenario.run(15)
        remaining = cq.last_result.relation.column("published")
        assert all(p > first_match_instant for p in remaining) or not remaining

    def test_multiple_sites_feed_the_stream(self, scenario):
        scenario.run(40)
        news = scenario.environment.relation("news")
        sites = {t[0] for t in news.instantaneous(scenario.clock.now)}
        assert sites == {"lemonde", "lefigaro", "cnn-europe"}


class TestNewsAlerts:
    def test_matching_items_sent_to_recipient(self, scenario):
        scenario.run(40)
        assert len(scenario.outbox) > 0
        assert {m.address for m in scenario.outbox.messages} == {"carla@elysee.fr"}
        for message in scenario.outbox.messages:
            assert "Obama" in message.text

    def test_each_item_sent_once(self, scenario):
        """Items stay in the window for many instants but the invocation
        cache prevents duplicate sends."""
        scenario.run(40)
        texts = [(m.address, m.text) for m in scenario.outbox.messages]
        assert len(texts) == len(set(texts))

    def test_message_count_tracks_matches(self, scenario):
        scenario.run(50)
        # Every matching headline produced exactly one message.
        feeds = scenario.feeds.values()
        matching = 0
        for feed in feeds:
            for instant in range(1, scenario.clock.now + 1):
                for item in feed.items_at(instant):
                    if "Obama" in item["title"]:
                        matching += 1
        assert len(scenario.outbox) == matching
