"""Integration tests for the columnar backend: engine sugar, backend
validation at every seam, mixed row/columnar trees, EXPLAIN ANALYZE
reporting and backend-aware tick-cost scoring.

Tuple-level correctness is pinned by the four-engine differentials
(:mod:`tests.exec.test_differential`); these tests cover the plumbing
around the executors.
"""

import pytest

from repro.algebra import col, scan
from repro.algebra.context import EvaluationContext
from repro.algebra.cost import COLUMNAR_TUPLE_FACTOR, CostModel
from repro.algebra.optimizer import Optimizer
from repro.continuous.continuous_query import ContinuousQuery
from repro.continuous.xdrelation import XDRelation
from repro.devices.paper_example import build_paper_example
from repro.devices.scenario import build_temperature_surveillance
from repro.errors import SerenaError
from repro.exec.columnar import ColumnarDelta, ValuePool
from repro.exec.lowering import lower
from repro.exec.shared import SharedPlanRegistry
from repro.exec.vectorized import (
    ColumnarExecutor,
    ColumnarJoinExec,
    ColumnarScanExec,
)
from repro.model.attributes import Attribute
from repro.model.environment import PervasiveEnvironment
from repro.model.types import DataType
from repro.model.xschema import ExtendedRelationSchema
from repro.obs.analyze import analyze_rows, render_analyze


def paper_env():
    return build_paper_example().environment


def contacts_query(env, name="q"):
    return (
        scan(env, "contacts")
        .select(col("name").ne("Carla"))
        .project("name", "address")
        .query(name)
    )


# ---------------------------------------------------------------------------
# Engine sugar and backend validation
# ---------------------------------------------------------------------------


class TestBackendSelection:
    def test_columnar_engine_is_incremental_sugar(self):
        env = paper_env()
        cq = ContinuousQuery(contacts_query(env), env, engine="columnar")
        assert cq.engine == "incremental"
        assert cq.backend == "columnar"
        assert any(e.backend == "columnar" for e in cq.executors())

    def test_explicit_backend_on_incremental(self):
        env = paper_env()
        cq = ContinuousQuery(
            contacts_query(env), env, engine="incremental", backend="columnar"
        )
        assert cq.backend == "columnar"
        default = ContinuousQuery(contacts_query(env), env)
        assert default.backend == "row"
        assert all(e.backend == "row" for e in default.executors())

    def test_columnar_engine_rejects_row_backend(self):
        env = paper_env()
        with pytest.raises(SerenaError, match="columnar"):
            ContinuousQuery(
                contacts_query(env), env, engine="columnar", backend="row"
            )

    def test_naive_engine_rejects_columnar_backend(self):
        env = paper_env()
        with pytest.raises(SerenaError, match="naive"):
            ContinuousQuery(
                contacts_query(env), env, engine="naive", backend="columnar"
            )

    def test_shared_registry_backend_mismatch_is_an_error(self):
        env = paper_env()
        registry = SharedPlanRegistry(env, backend="columnar")
        cq = ContinuousQuery(
            contacts_query(env), env, engine="shared", shared=registry
        )
        assert cq.backend == "columnar"  # inherited from the registry
        with pytest.raises(SerenaError, match="backend"):
            ContinuousQuery(
                contacts_query(env, "q2"), env, engine="shared",
                shared=registry, backend="row",
            )
        cq.release()

    def test_mixed_tree_keeps_row_executors_for_beta(self):
        env = paper_env()
        query = (
            scan(env, "contacts")
            .select(col("name").ne("Carla"))
            .assign("text", "Hi")
            .invoke("sendMessage")
            .query("q")
        )
        root = lower(query.root, backend="columnar")
        backends = {type(e).__name__: e.backend for e in root.walk()}
        assert backends["ColumnarScanExec"] == "columnar"
        assert backends["ColumnarSelectionExec"] == "columnar"
        assert backends["InvocationExec"] == "row"


# ---------------------------------------------------------------------------
# Columnar executors through the engine
# ---------------------------------------------------------------------------


class TestColumnarExecution:
    def test_change_deltas_are_columnar(self):
        env = paper_env()
        root = lower(contacts_query(env).root, backend="columnar")
        ctx = EvaluationContext(env, 0, states={}, continuous=True)
        change = root.tick(ctx)
        assert isinstance(change, ColumnarDelta)
        assert change.inserted  # the contacts rows minus Carla, projected
        assert root.current == change.inserted

    def test_scan_is_both_columnar_and_a_journaled_scan(self):
        # MRO matters: StreamingExec._journal_scan_child isinstance-checks
        # ScanExec, so the columnar scan must remain one.
        from repro.exec.executors import ScanExec

        env = paper_env()
        root = lower(scan(env, "contacts").query("q").root, backend="columnar")
        assert isinstance(root, ColumnarScanExec)
        assert isinstance(root, ColumnarExecutor)
        assert isinstance(root, ScanExec)

    def test_batch_stats_accumulate(self):
        env = paper_env()
        cq = ContinuousQuery(contacts_query(env), env, engine="columnar")
        cq.evaluate_at(0)
        cq.evaluate_at(1)
        columnar = [e for e in cq.executors() if e.backend == "columnar"]
        assert columnar
        for executor in columnar:
            assert executor.stats.batches == 2
        # The first tick moved the whole relation as one batch.
        assert any(e.stats.batch_rows > 0 for e in columnar)


# ---------------------------------------------------------------------------
# EXPLAIN ANALYZE
# ---------------------------------------------------------------------------


class TestAnalyzeBackendColumn:
    def test_rows_carry_backend_and_batch_fields(self):
        env = paper_env()
        cq = ContinuousQuery(contacts_query(env), env, engine="columnar")
        cq.evaluate_at(0)
        rows = analyze_rows(cq)
        assert rows
        assert {r["backend"] for r in rows} == {"columnar"}
        for row in rows:
            assert row["batches"] == 1
            assert row["batch_rows"] >= 0

    def test_render_shows_backend_and_batches(self):
        env = paper_env()
        cq = ContinuousQuery(contacts_query(env), env, engine="columnar")
        cq.evaluate_at(0)
        text = render_analyze(cq)
        assert "/columnar]" in text
        assert "batches=1" in text

    def test_row_backend_rows_have_no_batch_fields(self):
        env = paper_env()
        cq = ContinuousQuery(contacts_query(env), env)
        cq.evaluate_at(0)
        rows = analyze_rows(cq)
        assert {r["backend"] for r in rows} == {"row"}
        assert all("batches" not in r for r in rows)


# ---------------------------------------------------------------------------
# Join value-pool bound under key churn
# ---------------------------------------------------------------------------


class TestJoinPoolBound:
    def churn_rig(self):
        env = PervasiveEnvironment()
        lhs = XDRelation(
            ExtendedRelationSchema(
                "lhs",
                [Attribute("k", DataType.STRING), Attribute("a", DataType.STRING)],
            )
        )
        rhs = XDRelation(
            ExtendedRelationSchema(
                "rhs",
                [Attribute("k", DataType.STRING), Attribute("b", DataType.STRING)],
            )
        )
        env.add_relation(lhs)
        env.add_relation(rhs)
        return env, lhs, rhs

    @staticmethod
    def flip(relation, attr, instant, width=8):
        """Fresh join keys every instant; last instant's rows deleted —
        the worst case for the intern pool (every key is seen once)."""
        if instant > 1:
            relation.delete(
                [
                    (f"k{instant - 1}-{i}", f"{attr}{instant - 1}-{i}")
                    for i in range(width)
                ],
                instant=instant,
            )
        relation.insert(
            [(f"k{instant}-{i}", f"{attr}{instant}-{i}") for i in range(width)],
            instant=instant,
        )

    def test_high_churn_join_keys_stay_bounded(self):
        env, lhs, rhs = self.churn_rig()

        def join_query(name):
            return scan(env, "lhs").join(scan(env, "rhs")).query(name)

        row = ContinuousQuery(join_query("row"), env, engine="incremental")
        columnar = ContinuousQuery(join_query("col"), env, engine="columnar")
        join = next(
            e for e in columnar.executors() if isinstance(e, ColumnarJoinExec)
        )
        join.pool = ValuePool(compact_threshold=32)

        ticks = 40
        for instant in range(1, ticks + 1):
            self.flip(lhs, "a", instant)
            self.flip(rhs, "b", instant)
            got = columnar.evaluate_at(instant)
            want = row.evaluate_at(instant)
            assert got.relation.tuples == want.relation.tuples, instant
            assert columnar.last_reported_delta == row.last_reported_delta

        # 40 ticks × 8 fresh keys interned, yet the pool stayed bounded.
        assert join.pool.compactions >= 2
        assert len(join.pool) < 64


# ---------------------------------------------------------------------------
# PEMS plumbing
# ---------------------------------------------------------------------------


class TestPemsBackend:
    def test_scenario_runs_on_the_columnar_engine(self):
        scenario = build_temperature_surveillance(engine="columnar")
        scenario.run(3)
        alerts = scenario.queries["alerts"]
        assert alerts.backend == "columnar"
        assert any(e.backend == "columnar" for e in alerts.executors())

    def test_pems_backend_reaches_the_shared_registry(self):
        from repro.pems.pems import PEMS

        pems = PEMS(engine="shared", backend="columnar")
        assert pems.queries.shared.backend == "columnar"


# ---------------------------------------------------------------------------
# Backend-aware costing
# ---------------------------------------------------------------------------


class TestColumnarCosting:
    def plan(self, env):
        return (
            scan(env, "contacts")
            .select(col("name").ne("Carla"))
            .project("name")
            .query("q")
        )

    def test_columnar_ticks_are_cheaper(self):
        env = paper_env()
        model = CostModel(env)
        plan = self.plan(env)
        row = model.tick_cost(plan, engine="incremental")
        columnar = model.tick_cost(plan, engine="incremental", backend="columnar")
        assert columnar.total < row.total
        assert columnar.tuples_processed == pytest.approx(
            COLUMNAR_TUPLE_FACTOR * row.tuples_processed
        )

    def test_columnar_engine_sugar_in_tick_cost(self):
        env = paper_env()
        model = CostModel(env)
        plan = self.plan(env)
        assert model.tick_cost(plan, engine="columnar") == model.tick_cost(
            plan, engine="incremental", backend="columnar"
        )

    def test_service_cost_is_not_scaled(self):
        env = paper_env()
        model = CostModel(env)
        plan = (
            scan(env, "contacts")
            .assign("text", "Hi")
            .invoke("sendMessage")
            .query("q")
        )
        row = model.tick_cost(plan, engine="incremental")
        columnar = model.tick_cost(plan, engine="columnar")
        assert columnar.invocations == row.invocations
        assert columnar.total < row.total  # only the tuple work shrank

    def test_optimizer_accepts_a_backend(self):
        env = paper_env()
        model = CostModel(env)
        optimizer = Optimizer(model, engine="incremental", backend="columnar")
        outcome = optimizer.optimize(self.plan(env))
        assert outcome.cost.total <= outcome.original_cost.total
