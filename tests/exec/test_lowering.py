"""Lowering: logical plans → physical executor trees."""

from typing import Sequence

import pytest

from repro.algebra import col, scan
from repro.algebra.operators.base import Operator
from repro.continuous.xdrelation import XDRelation
from repro.devices.paper_example import build_paper_example
from repro.devices.scenario import surveillance_schema, temperatures_schema
from repro.exec import lower, lowering_summary, supported_operator
from repro.exec.executors import (
    FallbackExec,
    JoinExec,
    ScanExec,
    SelectionExec,
    WindowExec,
)
from repro.model.relation import XRelation
from repro.model.xschema import ExtendedRelationSchema


def paper_env():
    return build_paper_example().environment


def test_table3_plan_lowers_natively():
    env = paper_env()
    query = (
        scan(env, "contacts")
        .select(col("name").ne("Carla"))
        .assign("text", "Hi")
        .invoke("sendMessage")
        .project("name", "sent")
        .query("q")
    )
    root = lower(query.root)
    for executor in root.walk():
        assert not isinstance(executor, FallbackExec)
        assert supported_operator(executor.node)
    summary = lowering_summary(query.root)
    assert summary["fallback"] == 0
    assert summary["native"] == len(list(query.root.walk()))


def test_continuous_operators_lower_natively():
    env = paper_env()
    env.add_relation(XDRelation(temperatures_schema(), infinite=True))
    query = (
        scan(env, "temperatures")
        .window(3)
        .select(col("temperature").gt(30.0))
        .stream("insertion")
        .query("q")
    )
    root = lower(query.root)
    kinds = [type(e) for e in root.walk()]
    assert FallbackExec not in kinds
    assert WindowExec in kinds and ScanExec in kinds


def test_shared_subplan_lowered_once():
    env = paper_env()
    shared = scan(env, "contacts").select(col("messenger").ne("sms")).node
    from repro.algebra.operators.setops import Union

    plan = Union(shared, shared)
    root = lower(plan)
    left_child, right_child = root.children
    assert left_child is right_child
    assert isinstance(left_child, SelectionExec)


def test_unknown_operator_falls_back():
    class Exotic(Operator):
        def __init__(self, child: Operator):
            super().__init__((child,))

        def _derive_schema(self) -> ExtendedRelationSchema:
            return self.children[0].schema

        def with_children(self, children: Sequence[Operator]) -> "Exotic":
            (child,) = children
            return Exotic(child)

        def _compute(self, ctx):
            return self.children[0].evaluate(ctx)

        def render(self) -> str:
            return f"exotic({self.children[0].render()})"

    env = paper_env()
    node = Exotic(scan(env, "contacts").node)
    assert not supported_operator(node)
    root = lower(node)
    assert isinstance(root, FallbackExec)
    # The fallback subsumes its subtree: no children are lowered.
    assert root.children == ()
    assert lowering_summary(node) == {"native": 0, "fallback": 1}


def test_fallback_subtree_still_runs():
    """A plan with an un-lowerable node produces correct results."""

    class Twice(Operator):
        """Doubles nothing — identity, but unknown to the lowering pass."""

        def __init__(self, child: Operator):
            super().__init__((child,))

        def _derive_schema(self) -> ExtendedRelationSchema:
            return self.children[0].schema

        def with_children(self, children: Sequence[Operator]) -> "Twice":
            (child,) = children
            return Twice(child)

        def _compute(self, ctx):
            return self.children[0].evaluate(ctx)

        def render(self) -> str:
            return f"twice({self.children[0].render()})"

    from repro.algebra.query import Query
    from repro.exec import IncrementalEngine
    from repro.model.environment import PervasiveEnvironment

    env = PervasiveEnvironment()
    stored = XDRelation(surveillance_schema())
    stored.insert_mappings(
        [{"name": "Ana", "location": "office", "threshold": 30.0}], instant=0
    )
    env.add_relation(stored)
    engine = IncrementalEngine(
        Query(Twice(scan(env, "surveillance").node), "q"), env
    )
    result = engine.tick(1)
    assert {t for t in result.relation} == {("Ana", "office", 30.0)}
    stored.insert_mappings(
        [{"name": "Bo", "location": "roof", "threshold": 10.0}], instant=2
    )
    result = engine.tick(2)
    assert len(result.relation) == 2


def test_static_base_relation_lowers():
    env = paper_env()
    from repro.algebra.query import Query
    from repro.exec import IncrementalEngine

    query = Query(scan(env, "cameras").node, "cams")
    engine = IncrementalEngine(query, env)
    first = engine.tick(0)
    second = engine.tick(1)
    assert first.relation is second.relation  # unchanged tick: cached object
    assert not engine.change
