"""Unit tests for the incremental executors.

Each test drives a small plan through the physical layer directly
(:func:`lower` + per-instant contexts) and checks both the maintained
result and the published deltas — including the cases where the change
delta and the reported delta differ (journaled scans at skipped
instants).
"""

import pytest

from repro.algebra import col, scan
from repro.algebra.context import EvaluationContext
from repro.algebra.query import Query
from repro.continuous.xdrelation import XDRelation
from repro.devices.paper_example import build_paper_example
from repro.devices.scenario import (
    contacts_schema,
    surveillance_schema,
    temperatures_schema,
)
from repro.errors import SerenaError
from repro.exec import EMPTY_DELTA, IncrementalEngine, lower
from repro.model.environment import PervasiveEnvironment
from repro.model.relation import XRelation


def ctx_at(env, instant):
    return EvaluationContext(env, instant, states={}, continuous=True)


def surveillance_env(rows=(), infinite=False):
    env = PervasiveEnvironment()
    stored = XDRelation(surveillance_schema(), infinite=infinite)
    if rows:
        stored.insert(rows, instant=0)
    env.add_relation(stored)
    return env, stored


ANA = ("Ana", "office", 30.0)
BO = ("Bo", "roof", 10.0)
CY = ("Cy", "office", 20.0)


# ---------------------------------------------------------------------------
# Scan
# ---------------------------------------------------------------------------


class TestScanExec:
    def test_journal_deltas_are_exact(self):
        env, stored = surveillance_env([ANA])
        executor = lower(scan(env, "surveillance").node)
        change = executor.tick(ctx_at(env, 0))
        assert change.inserted == {ANA} and not change.deleted
        stored.insert([BO], instant=1)
        stored.delete([ANA], instant=1)
        change = executor.tick(ctx_at(env, 1))
        assert change.inserted == {BO}
        assert change.deleted == {ANA}
        assert executor.current == {BO}

    def test_skipped_instants_net_the_journal(self):
        env, stored = surveillance_env([ANA])
        executor = lower(scan(env, "surveillance").node)
        executor.tick(ctx_at(env, 0))
        # Written at 1, 2, 3 — but only evaluated at 3.
        stored.insert([BO], instant=1)
        stored.delete([BO], instant=2)
        stored.insert([CY], instant=3)
        change = executor.tick(ctx_at(env, 3))
        # BO came and went between evaluations: netted away.
        assert change.inserted == {CY} and not change.deleted
        # The *reported* delta is the journal at instant 3 exactly.
        assert executor.reported.inserted == {CY}

    def test_reported_differs_from_change_on_skip(self):
        env, stored = surveillance_env([ANA])
        executor = lower(scan(env, "surveillance").node)
        executor.tick(ctx_at(env, 0))
        stored.insert([BO], instant=1)  # written at 1...
        change = executor.tick(ctx_at(env, 2))  # ...evaluated at 2
        assert change.inserted == {BO}  # change: vs previous evaluation
        assert executor.reported == EMPTY_DELTA  # reported: journal @ 2
        assert executor.current == {ANA, BO}

    def test_same_instant_late_writes_are_picked_up(self):
        env, stored = surveillance_env()
        executor = lower(scan(env, "surveillance").node)
        stored.insert([ANA], instant=1)
        assert executor.tick(ctx_at(env, 1)).inserted == {ANA}
        # A second write lands at the *same* instant after evaluation —
        # the next evaluation must still observe it.
        stored.insert([BO], instant=1)
        change = executor.tick(ctx_at(env, 2))
        assert change.inserted == {BO}
        assert executor.current == {ANA, BO}

    def test_static_relation_is_constant_delta_free(self):
        env = build_paper_example().environment
        executor = lower(scan(env, "cameras").node)
        first = executor.tick(ctx_at(env, 0))
        assert len(first.inserted) == 3
        assert executor.tick(ctx_at(env, 1)) is EMPTY_DELTA
        assert executor.tick(ctx_at(env, 2)) is EMPTY_DELTA

    def test_replaced_relation_object_rebases(self):
        env = build_paper_example().environment
        executor = lower(scan(env, "contacts").node)
        executor.tick(ctx_at(env, 0))
        before = set(executor.current)
        kept = sorted(before)[:2]
        env.add_relation(XRelation(contacts_schema(), kept))
        change = executor.tick(ctx_at(env, 1))
        assert executor.current == set(kept)
        assert change.deleted == before - set(kept)

    def test_non_decreasing_instants_enforced(self):
        env, _ = surveillance_env([ANA])
        executor = lower(scan(env, "surveillance").node)
        executor.tick(ctx_at(env, 5))
        with pytest.raises(SerenaError):
            executor.tick(ctx_at(env, 4))


# ---------------------------------------------------------------------------
# Selection / projection
# ---------------------------------------------------------------------------


class TestTupleOperators:
    def test_selection_filters_deltas(self):
        env, stored = surveillance_env([ANA, BO])
        executor = lower(
            scan(env, "surveillance").select(col("location").eq("office")).node
        )
        assert executor.tick(ctx_at(env, 0)).inserted == {ANA}
        stored.insert([CY], instant=1)
        stored.delete([BO], instant=1)  # BO never passed the filter
        change = executor.tick(ctx_at(env, 1))
        assert change.inserted == {CY} and not change.deleted

    def test_projection_support_counting(self):
        env, stored = surveillance_env([ANA, CY])  # both in "office"
        executor = lower(scan(env, "surveillance").project("location").node)
        assert executor.tick(ctx_at(env, 0)).inserted == {("office",)}
        # One supporter leaves: the projected tuple must survive.
        stored.delete([ANA], instant=1)
        assert not executor.tick(ctx_at(env, 1))
        assert executor.current == {("office",)}
        # The last supporter leaves: now it disappears.
        stored.delete([CY], instant=2)
        assert executor.tick(ctx_at(env, 2)).deleted == {("office",)}
        assert executor.current == set()


# ---------------------------------------------------------------------------
# Join
# ---------------------------------------------------------------------------


class TestJoinExec:
    def setup_env(self):
        env = PervasiveEnvironment()
        left = XDRelation(surveillance_schema())
        env.add_relation(left)
        contacts = XDRelation(contacts_schema())
        env.add_relation(contacts)
        node = (
            scan(env, "surveillance").join(scan(env, "contacts")).node
        )
        return env, left, contacts, lower(node)

    def test_delta_join_matches_recomputation(self):
        env, left, contacts, executor = self.setup_env()
        naive = Query(executor.node, "oracle")
        left.insert([ANA, BO], instant=0)
        contacts.insert_mappings(
            [
                {"name": "Ana", "address": "a@x", "messenger": "email"},
                {"name": "Cy", "address": "c@x", "messenger": "email"},
            ],
            instant=0,
        )
        for instant, writes in [
            (1, lambda: contacts.insert_mappings(
                [{"name": "Bo", "address": "b@x", "messenger": "jabber"}], 1
            )),
            (2, lambda: left.delete([ANA], 2)),
            (3, lambda: left.insert([CY], 3)),
            (4, lambda: contacts.delete_mappings(
                [{"name": "Cy", "address": "c@x", "messenger": "email"}], 4
            )),
        ]:
            writes()
            executor.tick(ctx_at(env, instant))
            expected = naive.evaluate(env, instant).relation.tuples
            assert executor.current == expected

    def test_same_tick_insert_and_delete_both_sides(self):
        env, left, contacts, executor = self.setup_env()
        left.insert([ANA], instant=0)
        contacts.insert_mappings(
            [{"name": "Ana", "address": "a@x", "messenger": "email"}], 0
        )
        executor.tick(ctx_at(env, 0))
        assert len(executor.current) == 1
        # Replace both sides in one instant.
        left.delete([ANA], instant=1)
        left.insert([("Ana", "roof", 5.0)], instant=1)
        contacts.delete_mappings(
            [{"name": "Ana", "address": "a@x", "messenger": "email"}], 1
        )
        contacts.insert_mappings(
            [{"name": "Ana", "address": "a@y", "messenger": "email"}], 1
        )
        executor.tick(ctx_at(env, 1))
        expected = Query(executor.node, "oracle").evaluate(env, 1).relation.tuples
        assert executor.current == expected


# ---------------------------------------------------------------------------
# Window
# ---------------------------------------------------------------------------


class TestWindowExec:
    def readings(self, instant):
        return [("s1", "office", 20.0 + instant, instant)]

    def test_journal_window_slides(self):
        env = PervasiveEnvironment()
        stream = XDRelation(temperatures_schema(), infinite=True)
        env.add_relation(stream)
        executor = lower(scan(env, "temperatures").window(2).node)
        for instant in range(1, 7):
            stream.insert(self.readings(instant), instant=instant)
            executor.tick(ctx_at(env, instant))
            expected = stream.window(instant, 2)
            assert executor.current == expected
        # Two instants after the last insertion the window must be empty.
        executor.tick(ctx_at(env, 8))
        assert executor.current == set()

    def test_window_over_derived_stream_buffers(self):
        """W over S (not a scan): buffered per evaluation instant."""
        env, stored = surveillance_env([ANA])
        node = (
            scan(env, "surveillance").stream("insertion").window(2).node
        )
        executor = lower(node)
        states = {}

        def tick(instant):
            executor.tick(EvaluationContext(env, instant, states, True))

        tick(0)
        assert executor.current == {ANA}  # inserted at 0, window [−1, 0]
        stored.insert([BO], instant=1)
        tick(1)
        assert executor.current == {ANA, BO}
        tick(2)
        assert executor.current == {BO}  # ANA's insertion slid out
        tick(3)
        assert executor.current == set()


# ---------------------------------------------------------------------------
# Invocation
# ---------------------------------------------------------------------------


class TestInvocationExec:
    def build(self, env):
        node = (
            scan(env, "contacts")
            .assign("text", "Hi")
            .invoke("sendMessage")
            .node
        )
        return lower(node)

    def test_invokes_only_new_tuples(self):
        paper = build_paper_example()
        env = paper.environment
        contacts = XDRelation(contacts_schema())
        contacts.insert_mappings(
            [{"name": "Ana", "address": "a@x", "messenger": "email"}], 0
        )
        env.add_relation(contacts)
        executor = self.build(env)
        registry = env.registry
        executor.tick(ctx_at(env, 0))
        after_first = registry.invocation_count
        assert after_first == 1
        # Steady state: no new tuples, no new invocations.
        executor.tick(ctx_at(env, 1))
        executor.tick(ctx_at(env, 2))
        assert registry.invocation_count == after_first
        # A new tuple triggers exactly one more invocation.
        contacts.insert_mappings(
            [{"name": "Bo", "address": "b@x", "messenger": "email"}], 3
        )
        executor.tick(ctx_at(env, 3))
        assert registry.invocation_count == after_first + 1
        assert len(executor.current) == 2

    def test_departed_tuple_reinvoked_on_return(self):
        paper = build_paper_example()
        env = paper.environment
        contacts = XDRelation(contacts_schema())
        row = {"name": "Ana", "address": "a@x", "messenger": "email"}
        contacts.insert_mappings([row], 0)
        env.add_relation(contacts)
        executor = self.build(env)
        executor.tick(ctx_at(env, 0))
        contacts.delete_mappings([row], 1)
        executor.tick(ctx_at(env, 1))
        assert executor.current == set()
        before = env.registry.invocation_count
        contacts.insert_mappings([row], 2)
        executor.tick(ctx_at(env, 2))
        # Reappearing counts as newly inserted (Section 4.2): re-invoked.
        assert env.registry.invocation_count == before + 1
        assert len(executor.current) == 1


# ---------------------------------------------------------------------------
# Engine materialization
# ---------------------------------------------------------------------------


class TestIncrementalEngine:
    def test_unchanged_ticks_reuse_the_relation(self):
        env, stored = surveillance_env([ANA])
        engine = IncrementalEngine(
            Query(scan(env, "surveillance").node, "q"), env
        )
        r1 = engine.tick(0)
        r2 = engine.tick(1)
        assert r1.relation is r2.relation
        stored.insert([BO], instant=2)
        r3 = engine.tick(2)
        assert r3.relation is not r2.relation
        assert set(r3.relation.tuples) == {ANA, BO}

    def test_results_match_naive_query(self):
        env, stored = surveillance_env([ANA, BO])
        query = (
            scan(env, "surveillance")
            .select(col("threshold").ge(20.0))
            .project("name", "location")
            .query("q")
        )
        engine = IncrementalEngine(query, env)
        for instant in range(6):
            if instant == 2:
                stored.insert([CY], instant=2)
            if instant == 4:
                stored.delete([ANA], instant=4)
            got = engine.tick(instant).relation.tuples
            want = query.evaluate(env, instant).relation.tuples
            assert got == want, f"instant {instant}"
