"""Differential coverage of semantic substitution: a sensor dies for
good mid-run (``crash_permanent``), yet the surveillance queries keep
reporting every single instant because a spare environmental station is
substituted in — and all four engines (naive, incremental, shared,
columnar) agree tick-for-tick on relations, substitution bindings,
failover tables and rebind history.

The crash instant itself is served by the precomputed failover table;
from the next instant on the sticky binding routes the invocations, so
the ``temperatures`` stream never misses a tick for the dead sensor
(the "zero missed ticks" acceptance criterion of DESIGN.md §13).
"""

from repro.devices.faults import FaultScript
from repro.devices.scenario import build_temperature_surveillance
from repro.model.invocation_policy import InvocationPolicy
from repro.model.substitution import SubstitutionRule

from tests.exec.test_differential import TICKS, action_strings, outbox_key

ENGINES = ("naive", "incremental", "shared", "columnar")

CRASH_AT = 20
POLICY = InvocationPolicy(failure_threshold=1, quarantine_backoff=8)

#: sensor22 (roof) dies permanently at instant 20; the spare roof
#: station serves projected ``getEnvReading`` readings in its stead.
FAULTS = {"sensor22": FaultScript(crash_at=CRASH_AT)}
SPARES = (("spare-roof", "roof", 15.5),)
RULES = (
    SubstitutionRule.specializes(
        "getTemperature", "spare-roof", "getEnvReading", reference="sensor22"
    ),
)


def drive_substitution_scenario(engine):
    scenario = build_temperature_surveillance(
        engine=engine,
        policy=POLICY,
        sensor_faults=FAULTS,
        fault_seed="sub-diff",
        spare_sensors=SPARES,
        substitutions=RULES,
    )
    pems = scenario.pems
    snapshots = []
    for _ in range(TICKS):
        now = scenario.run(1)
        if now == 12:
            scenario.add_sensor("sensor90", "office", base=31.0)
        if now == 30:
            scenario.remove_sensor("sensor90")
        report = pems.erm.substitution_report()
        snapshots.append(
            {
                "relations": {
                    name: cq.last_result.relation.tuples
                    for name, cq in scenario.queries.items()
                },
                "sensors": sorted(
                    row[0]
                    for row in pems.environment.instantaneous(
                        "sensors", pems.clock.now
                    )
                ),
                "fed_this_tick": sorted(
                    row[0]
                    for row in pems.environment.instantaneous(
                        "temperatures", pems.clock.now
                    )
                    if row[3] == now
                ),
                "parked": pems.erm.parked,
                "health": {
                    ref: pems.environment.registry.health.state(ref).value
                    for ref in sorted(pems.environment.registry.health.known())
                },
                "bindings": report["bindings"],
                "failover": report["failover"],
                "history": report["history"],
            }
        )
    return scenario, snapshots


def assert_scenarios_agree(reference, others):
    ref_scenario, ref_snaps = reference
    for scenario, snaps in others:
        for instant, (a, b) in enumerate(zip(ref_snaps, snaps), start=1):
            assert a == b, f"tick {instant} diverged"
        for name in ref_scenario.queries:
            cq_a = ref_scenario.queries[name]
            cq_b = scenario.queries[name]
            assert sorted(cq_b.emitted) == sorted(cq_a.emitted), name
            assert action_strings(cq_b.actions) == action_strings(
                cq_a.actions
            ), name
        assert outbox_key(scenario.outbox) == outbox_key(ref_scenario.outbox)


def test_substitution_differential_zero_missed_ticks():
    """All four engines agree through a permanent crash; the dead
    sensor's readings keep flowing every instant via the substitute."""
    runs = {engine: drive_substitution_scenario(engine) for engine in ENGINES}
    assert_scenarios_agree(
        runs["naive"],
        [runs["incremental"], runs["shared"], runs["columnar"]],
    )
    scenario, snaps = runs["naive"]

    # The crash really was permanent (not a transient window).
    injector = scenario.injectors["sensor22"]
    assert injector.faults_injected.get("crash_permanent", 0) > 0

    # Zero missed ticks: sensor22 feeds the temperatures stream at every
    # single instant — before the crash on its own, at the crash instant
    # via the failover table, afterwards via the sticky binding.
    for instant, snap in enumerate(snaps, start=1):
        assert "sensor22" in snap["fed_this_tick"], f"missed tick {instant}"

    # The sweep installed the binding one instant after the quarantine;
    # sensor22 never parked and its discovery row never left the extent.
    final = snaps[-1]
    assert final["bindings"] == {
        "getTemperature[sensor22]": "specializes spare-roof/getEnvReading"
    }
    assert final["history"][0].startswith("@21 getTemperature[sensor22]")
    assert "(quarantine)" in final["history"][0]
    assert all(not snap["parked"] for snap in snaps)
    assert all("sensor22" in snap["sensors"] for snap in snaps)

    # Before the crash the pair sat in the precomputed failover table;
    # once bound it left the table.
    before = snaps[CRASH_AT - 2]
    assert before["failover"] == {
        "getTemperature[sensor22]": ["specializes spare-roof/getEnvReading"]
    }
    assert before["bindings"] == {}
    assert final["failover"] == {}

    # Not vacuous: alerts still flowed after the crash.
    assert scenario.outbox.messages
