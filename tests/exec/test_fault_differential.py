"""Differential coverage under fault scripts: the naive, incremental,
shared and columnar engines must agree tick-for-tick while scripted chaos (crash
windows, intermittent errors, malformed outputs, latency spikes) plays
against the §5.2 surveillance scenario — including its native
``messenger_failure_rate`` flakiness.

The fault scripts are pure functions of ``(seed, reference, instant)``
(Section 3.2 determinism), so every engine sees the *same* environment;
any divergence is an engine bug, not chaos.
"""

from repro.devices.faults import FaultScript
from repro.devices.scenario import build_temperature_surveillance
from repro.model.invocation_policy import InvocationPolicy

from tests.exec.test_differential import TICKS, action_strings, outbox_key

ENGINES = ("naive", "incremental", "shared", "columnar")

#: One fault mode per sensor, overlapping the churn script below.
FAULTS = {
    "sensor01": FaultScript(crash_windows=((10, 22), (35, 40))),
    "sensor06": FaultScript(failure_rate=0.25),
    "sensor07": FaultScript(malformed_windows=((15, 24),)),
    "sensor22": FaultScript(latency_spike_rate=0.15),
}


def drive_fault_scenario(engine, policy=None):
    scenario = build_temperature_surveillance(
        engine=engine,
        messenger_failure_rate=0.2,
        sensor_faults=FAULTS,
        fault_seed="fault-diff",
        policy=policy,
    )
    pems = scenario.pems
    snapshots = []
    for _ in range(TICKS):
        now = scenario.run(1)
        if now == 12:
            scenario.add_sensor("sensor90", "office", base=31.0)
        if now == 30:
            scenario.remove_sensor("sensor90")
        if now == 44:
            pems.create_local_erm("gateway").deregister("jabber")
        snapshots.append(
            {
                "relations": {
                    name: cq.last_result.relation.tuples
                    for name, cq in scenario.queries.items()
                },
                "sensors": sorted(
                    row[0]
                    for row in pems.environment.instantaneous(
                        "sensors", pems.clock.now
                    )
                ),
                "failures": len(pems.queries.failures),
                "parked": pems.erm.parked,
                "health": {
                    ref: pems.environment.registry.health.state(ref).value
                    for ref in sorted(pems.environment.registry.health.known())
                },
            }
        )
    return scenario, snapshots


def assert_scenarios_agree(reference, others):
    ref_scenario, ref_snaps = reference
    for scenario, snaps in others:
        for instant, (a, b) in enumerate(zip(ref_snaps, snaps), start=1):
            assert a == b, f"tick {instant} diverged"
        for name in ref_scenario.queries:
            cq_a = ref_scenario.queries[name]
            cq_b = scenario.queries[name]
            assert sorted(cq_b.emitted) == sorted(cq_a.emitted), name
            assert action_strings(cq_b.actions) == action_strings(
                cq_a.actions
            ), name
        assert outbox_key(scenario.outbox) == outbox_key(ref_scenario.outbox)


def test_fault_scenario_differential():
    """Permissive policy: chaos flows through skip-paths; all four
    engines agree on every relation, action, alert and failure count."""
    runs = {engine: drive_fault_scenario(engine) for engine in ENGINES}
    assert_scenarios_agree(
        runs["naive"],
        [runs["incremental"], runs["shared"], runs["columnar"]],
    )
    # The chaos had observable consequences (not a vacuous agreement):
    # faults were injected, yet alerts still flowed from healthy sensors.
    assert runs["naive"][0].outbox.messages
    injector = runs["naive"][0].injectors["sensor01"]
    assert injector.faults_injected.get("crash", 0) > 0
    assert runs["naive"][0].injectors["sensor07"].faults_injected.get(
        "malformed", 0
    ) > 0


def test_fault_scenario_differential_with_quarantine_policy():
    """failure_threshold=1 trips on the first failure whatever the
    per-instant attempt count, so the quarantine lifecycle (removal,
    parking, re-admission) is engine-invariant and must agree too."""
    policy = InvocationPolicy(failure_threshold=1, quarantine_backoff=8)
    runs = {
        engine: drive_fault_scenario(engine, policy=policy)
        for engine in ENGINES
    }
    assert_scenarios_agree(
        runs["naive"],
        [runs["incremental"], runs["shared"], runs["columnar"]],
    )
    _, snaps = runs["naive"]
    # Quarantines actually happened and were later released.
    assert any(snap["parked"] for snap in snaps)
    assert any(
        snap["health"].get("sensor01") == "quarantined" for snap in snaps
    )
    quarantined_events = [
        e
        for e in runs["naive"][0].pems.erm.events
        if e.kind == "quarantined"
    ]
    appeared_after = [
        e
        for e in runs["naive"][0].pems.erm.events
        if e.kind == "appeared" and e.instant > quarantined_events[0].instant
    ]
    assert quarantined_events and appeared_after
