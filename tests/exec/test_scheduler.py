"""Unit tests for the quiescence-aware tick scheduler."""

import pytest

from repro.continuous.continuous_query import ContinuousQuery
from repro.errors import SerenaError
from repro.exec.scheduler import TickScheduler, _plan_dependencies
from repro.exec.shared import SharedPlanRegistry
from repro.model.services import Service
from repro.pems.erm import DiscoveryEvent

from tests.exec.test_shared import ECHO, build_env, prefix

from repro.algebra import col, scan


def make_rig():
    env, items = build_env()
    registry = SharedPlanRegistry(env)
    scheduler = TickScheduler(env)
    return env, items, registry, scheduler


def add(env, registry, scheduler, name, query, engine="shared"):
    cq = ContinuousQuery(
        query, env, engine=engine,
        shared=registry if engine == "shared" else None,
    )
    scheduler.register(name, cq)
    return cq


def drive(scheduler, queries, instant):
    """One processor-style tick: evaluate the affected, skip the rest."""
    affected = scheduler.plan(instant)
    for name, cq in queries.items():
        if name in affected:
            try:
                cq.evaluate_at(instant)
            except Exception:
                scheduler.evaluated(name, False)
            else:
                scheduler.evaluated(name, True)
        else:
            cq.carry_forward(instant)
            scheduler.skipped(name)
    return affected


class TestDependencies:
    def test_relations_and_prototypes_extracted(self):
        env, _ = build_env()
        plan = prefix(env).invoke("echo").query().root
        relations, prototypes = _plan_dependencies(plan)
        assert relations == frozenset({"items"})
        assert prototypes == frozenset({"echo"})

    def test_join_collects_both_scans(self):
        env, _ = build_env()
        plan = (
            scan(env, "readings")
            .window(2)
            .join(scan(env, "items"))
            .query()
            .root
        )
        relations, _ = _plan_dependencies(plan)
        assert relations == frozenset({"items", "readings"})


class TestScheduling:
    def test_fresh_query_is_affected_then_quiesces(self):
        env, items, registry, scheduler = make_rig()
        q = {"a": add(env, registry, scheduler, "a", prefix(env).query())}
        assert "a" in drive(scheduler, q, 1)
        assert "a" not in drive(scheduler, q, 2)  # nothing changed
        assert scheduler.stats == {"scheduled": 1, "evaluations": 1, "skips": 1}

    def test_relation_write_wakes_dependents(self):
        env, items, registry, scheduler = make_rig()
        q = {
            "a": add(env, registry, scheduler, "a", prefix(env).query()),
            "b": add(
                env, registry, scheduler, "b",
                scan(env, "items").select(col("value").ge(4.0)).query(),
            ),
        }
        drive(scheduler, q, 1)
        items.insert([("fresh", "dev", 9.0)], instant=2)
        assert drive(scheduler, q, 2) == {"a", "b"}
        assert drive(scheduler, q, 3) == set()
        assert q["a"].last_result.relation.tuples == frozenset(
            t for t in items.instantaneous(3).tuples if t[2] >= 2.0
        )

    def test_noop_write_does_not_wake(self):
        env, items, registry, scheduler = make_rig()
        q = {"a": add(env, registry, scheduler, "a", prefix(env).query())}
        drive(scheduler, q, 1)
        # Inserting an already-present tuple is a journal no-op: the
        # revision must not move, so the query stays quiescent.
        items.insert([("item0", "dev", 0.0)], instant=2)
        assert drive(scheduler, q, 2) == set()

    def test_carried_result_advances_instant_with_empty_delta(self):
        env, items, registry, scheduler = make_rig()
        q = {"a": add(env, registry, scheduler, "a", prefix(env).query())}
        drive(scheduler, q, 1)
        drive(scheduler, q, 2)
        cq = q["a"]
        assert cq.last_result.instant == 2
        delta = cq.last_reported_delta
        assert not delta.inserted and not delta.deleted
        assert not cq.last_result.actions

    def test_window_query_is_always_live(self):
        env, items, registry, scheduler = make_rig()
        readings = env.relation("readings")
        readings.insert([("r1", 1.0)], instant=0)
        q = {
            "w": add(
                env, registry, scheduler, "w",
                scan(env, "readings").window(2).query(),
            )
        }
        for instant in range(1, 6):
            assert "w" in drive(scheduler, q, instant)
        # Window contents expire even with a silent source.
        assert q["w"].last_result.relation.tuples == frozenset()

    def test_stream_query_is_always_live(self):
        env, items, registry, scheduler = make_rig()
        q = {
            "s": add(
                env, registry, scheduler, "s",
                prefix(env).stream("insertion").query(),
            )
        }
        for instant in range(1, 4):
            assert "s" in drive(scheduler, q, instant)

    def test_invocation_query_quiesces_once_cache_is_warm(self):
        env, items, registry, scheduler = make_rig()
        q = {
            "i": add(
                env, registry, scheduler, "i",
                prefix(env).invoke("echo").query(),
            )
        }
        before = env.registry.invocation_count
        drive(scheduler, q, 1)
        warm = env.registry.invocation_count
        assert warm > before
        assert drive(scheduler, q, 2) == set()
        assert env.registry.invocation_count == warm

    def test_naive_query_is_never_skipped(self):
        env, items, registry, scheduler = make_rig()
        q = {
            "n": add(
                env, registry, scheduler, "n", prefix(env).query(),
                engine="naive",
            )
        }
        for instant in range(1, 4):
            assert "n" in drive(scheduler, q, instant)
        assert scheduler.skips == 0

    def test_failed_query_retries_every_tick(self):
        env, items, registry, scheduler = make_rig()
        env.registry.unregister("dev")
        q = {
            "f": add(
                env, registry, scheduler, "f",
                prefix(env).invoke("echo").query(),
            )
        }
        failures = 0
        for instant in range(1, 5):
            affected = scheduler.plan(instant)
            assert "f" in affected  # retried while the cause persists
            try:
                q["f"].evaluate_at(instant)
            except Exception:
                failures += 1
                scheduler.evaluated("f", False)
            else:
                scheduler.evaluated("f", True)
        assert failures == 4

    def test_discovery_event_wakes_prototype_dependents(self):
        env, items, registry, scheduler = make_rig()
        q = {
            "i": add(
                env, registry, scheduler, "i",
                prefix(env).invoke("echo").query(),
            ),
            "p": add(env, registry, scheduler, "p", prefix(env).query()),
        }
        drive(scheduler, q, 1)
        service = env.registry.get("dev")
        scheduler.on_discovery_event(DiscoveryEvent("appeared", service, 1))
        affected = drive(scheduler, q, 2)
        assert "i" in affected  # invokes echo: woken
        assert "p" not in affected  # pure relational query: quiescent

    def test_duplicate_registration_rejected(self):
        env, items, registry, scheduler = make_rig()
        cq = add(env, registry, scheduler, "a", prefix(env).query())
        with pytest.raises(SerenaError, match="already scheduled"):
            scheduler.register("a", cq)

    def test_deregister_cleans_all_indexes(self):
        env, items, registry, scheduler = make_rig()
        q = {
            "a": add(
                env, registry, scheduler, "a",
                prefix(env).invoke("echo").query(),
            )
        }
        drive(scheduler, q, 1)
        scheduler.deregister("a")
        assert "a" not in scheduler
        assert len(scheduler) == 0
        items.insert([("fresh", "dev", 9.0)], instant=2)
        assert scheduler.plan(2) == set()
        scheduler.deregister("a")  # idempotent


class TestLivenessDowngrade:
    """A once-live query must leave the live set when its streaming or
    pending invocations drain — otherwise it is re-evaluated every tick
    forever, defeating quiescence."""

    def test_async_live_then_drained_then_carried_forward(self):
        env, items, registry, scheduler = make_rig()
        q = {
            "a": add(
                env, registry, scheduler, "a",
                prefix(env).invoke("echo", delay=2).query(),
            )
        }
        drive(scheduler, q, 1)                  # requests issued, due at 3
        assert "a" in drive(scheduler, q, 2)    # in flight: live
        assert "a" in drive(scheduler, q, 3)    # responses land
        assert "a" not in drive(scheduler, q, 4)  # drained: carried forward
        assert q["a"].last_result.instant == 4
        assert len(q["a"].last_result.relation) == 4

    def test_skip_pending_keeps_query_live(self):
        """Pinned: on_error="skip" retries an unreachable device every
        instant while its tuple stays present — the query never quiesces."""
        env, items, registry, scheduler = make_rig()
        items.insert([("ghost", "nodev", 9.0)], instant=0)
        q = {
            "a": add(
                env, registry, scheduler, "a",
                scan(env, "items").invoke("echo", on_error="skip").query(),
            )
        }
        for instant in (1, 2, 3, 4):
            assert "a" in drive(scheduler, q, instant)

    def test_degrade_parks_and_drains_liveness(self):
        """on_error="degrade" parks the failed tuple: the query quiesces
        instead of hammering the dead device."""
        env, items, registry, scheduler = make_rig()
        items.insert([("ghost", "nodev", 9.0)], instant=0)
        q = {
            "a": add(
                env, registry, scheduler, "a",
                scan(env, "items").invoke("echo", on_error="degrade").query(),
            )
        }
        assert "a" in drive(scheduler, q, 1)      # parks the ghost tuple
        assert "a" not in drive(scheduler, q, 2)  # quiescent
        assert "a" not in drive(scheduler, q, 3)
        # The healthy rows were served before parking ever happened.
        assert len(q["a"].last_result.relation) == 6

    def test_evaluated_failure_recomputes_liveness(self):
        """Regression: the failure path of evaluated() used to early-return
        without the liveness downgrade, leaving a drained query in the
        live set."""
        env, items, registry, scheduler = make_rig()
        q = {
            "a": add(
                env, registry, scheduler, "a",
                prefix(env).invoke("echo", delay=2).query(),
            )
        }
        drive(scheduler, q, 1)
        drive(scheduler, q, 2)
        drive(scheduler, q, 3)                 # responses landed: drained
        assert "a" not in scheduler._live
        scheduler._live.add("a")               # the stale pre-fix state
        scheduler.evaluated("a", False)        # a failed outcome...
        assert "a" not in scheduler._live      # ...must also downgrade
        assert "a" in scheduler._failed
        scheduler.evaluated("a", True)
        assert "a" not in scheduler._failed
