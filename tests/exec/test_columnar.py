"""Unit tests for the columnar delta representation and the
compile-at-lowering helpers.

Covers the backend-neutral delta contract (coalesce, order-insensitive
equality and repr — on both backends), the :class:`ColumnarDelta` dual
lazy representation, :class:`ValuePool` interning, and the closures the
lowering pass compiles once per executor: predicates, join-key gathers
and join output combiners.
"""

import pytest

from repro.algebra.formula import And, Not, Or, TrueFormula, col
from repro.devices.scenario import surveillance_schema
from repro.errors import FormulaError, SerenaError
from repro.exec.columnar import ColumnarDelta, ValuePool, as_rows
from repro.exec.delta import EMPTY_DELTA, Delta, coalesce_sets
from repro.exec.lowering import (
    compile_combiner,
    compile_filter,
    compile_key,
    compile_predicate,
    lowerings_for,
)

ANA = ("Ana", "office", 30.0)
BO = ("Bo", "roof", 10.0)
CY = ("Cy", "office", 20.0)


# ---------------------------------------------------------------------------
# ValuePool
# ---------------------------------------------------------------------------


class TestValuePool:
    def test_ids_are_dense_and_stable(self):
        pool = ValuePool()
        assert pool.intern("a") == 0
        assert pool.intern("b") == 1
        assert pool.intern("a") == 0  # stable across calls
        assert len(pool) == 2
        assert "a" in pool and "z" not in pool
        assert pool.value(1) == "b"

    def test_intern_column(self):
        pool = ValuePool()
        pool.intern("x")
        ids = pool.intern_column(["y", "x", "y", None])
        assert ids == [1, 0, 1, 2]
        assert pool.value(2) is None

    def test_equal_keys_share_an_id(self):
        # Interning follows == (like the row join's dict buckets).
        pool = ValuePool()
        assert pool.intern(1) == pool.intern(1.0)

    def test_maybe_compact_below_threshold_is_a_no_op(self):
        pool = ValuePool(compact_threshold=4)
        pool.intern_column(["a", "b"])
        assert pool.maybe_compact([0]) is None
        assert len(pool) == 2
        assert pool.compactions == 0

    def test_maybe_compact_evicts_dead_ids_and_remaps(self):
        pool = ValuePool(compact_threshold=4)
        pool.intern_column(["a", "b", "c", "d", "e"])
        remap = pool.maybe_compact([1, 3])
        assert remap == {1: 0, 3: 1}
        assert len(pool) == 2
        assert pool.value(0) == "b" and pool.value(1) == "d"
        assert "b" in pool and "a" not in pool
        assert pool.compactions == 1
        # An evicted value re-interns under a fresh id after the survivors.
        assert pool.intern("a") == 2

    def test_maybe_compact_backs_off_when_mostly_live(self):
        pool = ValuePool(compact_threshold=4)
        pool.intern_column(["a", "b", "c", "d"])
        # 3 of 4 entries live: eviction reclaims ~nothing, threshold doubles.
        assert pool.maybe_compact([0, 1, 2]) is None
        assert pool.compactions == 0
        assert pool.maybe_compact([]) is None  # below the doubled threshold
        pool.intern_column([f"v{i}" for i in range(5)])  # 9 ≥ 8: due again
        assert pool.maybe_compact([]) == {}
        assert len(pool) == 0
        assert pool.compactions == 1


# ---------------------------------------------------------------------------
# ColumnarDelta: dual representation and the delta contract
# ---------------------------------------------------------------------------


class TestColumnarDelta:
    def test_rows_to_columns_and_back(self):
        delta = ColumnarDelta.from_rows([ANA, BO], [CY], width=3)
        assert delta.insert_columns() == [
            ["Ana", "Bo"], ["office", "roof"], [30.0, 10.0],
        ]
        assert delta.delete_columns() == [["Cy"], ["office"], [20.0]]
        assert list(delta.insert_rows()) == [ANA, BO]
        assert delta.insert_count == 2 and delta.delete_count == 1

    def test_columns_to_rows(self):
        delta = ColumnarDelta.from_columns(
            [["Ana", "Bo"], ["office", "roof"], [30.0, 10.0]], [[], [], []], 3
        )
        assert list(delta.insert_rows()) == [ANA, BO]
        assert list(delta.delete_rows()) == []
        assert delta.inserted == {ANA, BO} and delta.deleted == frozenset()

    def test_views_are_cached(self):
        delta = ColumnarDelta.from_rows([ANA], [], width=3)
        assert delta.insert_columns() is delta.insert_columns()
        assert delta.inserted is delta.inserted
        columnar = ColumnarDelta.from_columns([["Ana"]], [[]], 1)
        assert columnar.insert_rows() is columnar.insert_rows()

    def test_from_sets_is_zero_copy(self):
        inserted = frozenset([ANA])
        delta = ColumnarDelta.from_sets(inserted, frozenset(), width=3)
        assert delta.inserted is inserted

    def test_duplicates_and_none_survive_in_rows(self):
        # The array form is a bag; set semantics only at the contract view.
        delta = ColumnarDelta.from_rows(
            [("x", None), ("x", None)], [], width=2
        )
        assert len(list(delta.insert_rows())) == 2
        assert delta.insert_columns() == [["x", "x"], [None, None]]
        assert delta.inserted == {("x", None)}

    def test_width_zero(self):
        delta = ColumnarDelta.from_columns([], [], 0, insert_count=2)
        assert list(delta.insert_rows()) == [(), ()]
        assert delta.inserted == {()}
        assert delta.insert_count == 2 and delta.delete_count == 0

    def test_truthiness_and_len(self):
        assert not ColumnarDelta.from_rows([], [], width=3)
        assert ColumnarDelta.from_rows([], [ANA], width=3)
        assert len(ColumnarDelta.from_rows([ANA, BO], [CY], width=3)) == 3

    def test_to_delta_and_coerce(self):
        columnar = ColumnarDelta.from_rows([ANA], [BO], width=3)
        row = columnar.to_delta()
        assert isinstance(row, Delta)
        assert row.inserted == {ANA} and row.deleted == {BO}
        assert ColumnarDelta.from_rows([], [], 3).to_delta() is EMPTY_DELTA
        assert ColumnarDelta.coerce(columnar, 3) is columnar
        coerced = ColumnarDelta.coerce(row, 3)
        assert isinstance(coerced, ColumnarDelta) and coerced == row

    def test_as_rows_either_backend(self):
        columnar = ColumnarDelta.from_rows([ANA], [BO], width=3)
        ins, dels = as_rows(columnar)
        assert list(ins) == [ANA] and list(dels) == [BO]
        ins, dels = as_rows(Delta(frozenset([ANA]), frozenset()))
        assert set(ins) == {ANA} and not set(dels)


# ---------------------------------------------------------------------------
# The shared contract: equality, repr, coalesce — on both backends
# ---------------------------------------------------------------------------


def both_backends(inserted, deleted, width=3):
    return (
        Delta(frozenset(inserted), frozenset(deleted)),
        ColumnarDelta.from_rows(list(inserted), list(deleted), width),
    )


class TestDeltaContract:
    def test_equality_is_order_insensitive(self):
        for make in (
            lambda ins, dels: Delta(frozenset(ins), frozenset(dels)),
            lambda ins, dels: ColumnarDelta.from_rows(ins, dels, 3),
        ):
            assert make([ANA, BO], [CY]) == make([BO, ANA], [CY])

    def test_cross_backend_equality_and_hash(self):
        row, columnar = both_backends([ANA, BO], [CY])
        assert row == columnar and columnar == row
        assert hash(row) == hash(columnar)
        assert row != Delta(frozenset([ANA]), frozenset())
        assert row != object() and columnar != object()

    def test_repr_is_deterministic_and_diffs_cleanly(self):
        row, columnar = both_backends([BO, ANA], [])
        assert repr(row) == (
            "Delta(+2 {('Ana', 'office', 30.0), "
            "('Bo', 'roof', 10.0)}, -0 {})"
        )
        # Same rendering, different head: a differential failure message
        # shows exactly where the backends diverge.
        assert repr(columnar) == "Columnar" + repr(row)
        shuffled = ColumnarDelta.from_rows([ANA, BO], [], 3)
        assert repr(columnar) == repr(shuffled)

    def test_coalesce_cancels_insert_then_delete(self):
        first = Delta(frozenset([ANA, BO]), frozenset())
        later = Delta(frozenset([CY]), frozenset([ANA]))
        merged = first.coalesce(later)
        assert merged.inserted == {BO, CY}
        assert merged.deleted == frozenset()

    def test_coalesce_cancels_delete_then_insert(self):
        first = Delta(frozenset(), frozenset([ANA]))
        later = Delta(frozenset([ANA]), frozenset())
        assert first.coalesce(later) is EMPTY_DELTA

    def test_coalesce_both_backends_agree(self):
        for first_ins, first_del, later_ins, later_del in [
            ([ANA], [], [BO], [ANA]),
            ([], [ANA], [ANA], [BO]),
            ([ANA, BO], [CY], [CY], [BO]),
        ]:
            row_a, col_a = both_backends(first_ins, first_del)
            row_b, col_b = both_backends(later_ins, later_del)
            expected = row_a.coalesce(row_b)
            # Columnar coalesce stays columnar and accepts either operand.
            for later in (row_b, col_b):
                merged = col_a.coalesce(later)
                assert isinstance(merged, ColumnarDelta)
                assert merged == expected
            # Row coalesce accepts a columnar later operand too.
            assert row_a.coalesce(col_b) == expected

    def test_coalesce_sets_algebra(self):
        ins, dels = coalesce_sets(
            frozenset("ab"), frozenset("c"), frozenset("cd"), frozenset("a")
        )
        assert ins == frozenset("bd") and dels == frozenset()


# ---------------------------------------------------------------------------
# Compiled closures
# ---------------------------------------------------------------------------


SCHEMA = surveillance_schema()  # (name, location, threshold)
ROWS = [ANA, BO, CY, ("Dee", "lab", None)]


class TestCompilePredicate:
    def agree(self, formula, rows=ROWS):
        fast, slow = compile_predicate(formula, SCHEMA)
        assert [fast(t) for t in rows] == [slow(t) for t in rows]
        return fast

    def test_comparisons(self):
        fast = self.agree(col("location").eq("office"))
        assert [fast(t) for t in ROWS] == [True, False, True, False]
        self.agree(col("name").ne("Bo"))
        self.agree(col("threshold").ge(20.0), rows=ROWS[:3])

    def test_attribute_to_attribute(self):
        from repro.algebra.formula import Comparison

        formula = Comparison(
            "name", "=", "location", left_is_attr=True, right_is_attr=True
        )
        fast, slow = compile_predicate(formula, SCHEMA)
        rows = [("x", "x", 1.0), ("x", "y", 1.0)]
        assert [fast(t) for t in rows] == [slow(t) for t in rows] == [True, False]

    def test_connectives_short_circuit_like_the_interpreter(self):
        formula = Or(
            col("location").eq("roof"),
            And(col("threshold").gt(25.0), Not(col("name").eq("Cy"))),
        )
        fast = self.agree(formula, rows=ROWS[:3])
        assert [fast(t) for t in ROWS[:3]] == [True, True, False]
        # Short circuit: the left disjunct passing must skip the right
        # one, which would raise on Dee's None threshold.
        assert fast(("Dee", "roof", None)) is True

    def test_true_formula(self):
        fast, slow = compile_predicate(TrueFormula(), SCHEMA)
        assert fast(ANA) is True and slow(ANA) is True

    def test_contains_error_parity(self):
        # fast inlines native ``in`` (TypeError on non-strings) where the
        # interpreter raises FormulaError; executors replay via slow.
        fast, slow = compile_predicate(col("name").contains("n"), SCHEMA)
        assert fast(ANA) is True and fast(BO) is False
        with pytest.raises((TypeError, FormulaError)):
            fast((None, "office", 1.0))
        with pytest.raises(FormulaError):
            slow((None, "office", 1.0))

    def test_ordering_error_parity(self):
        # fast raises a bare TypeError where the interpreter raises
        # FormulaError; the executor replays the batch through slow.
        fast, slow = compile_predicate(col("threshold").gt(25.0), SCHEMA)
        bad = ("Dee", "lab", None)
        with pytest.raises((TypeError, FormulaError)):
            fast(bad)
        with pytest.raises(FormulaError):
            slow(bad)

    def test_arbitrary_constants_survive(self):
        # Constants bind through the namespace, never via repr().
        class Odd:
            def __eq__(self, other):
                return other == "office"

            def __hash__(self):
                return 0

        fast, _ = compile_predicate(col("location").eq(Odd()), SCHEMA)
        assert fast(ANA) is True and fast(BO) is False


class TestCompileFilter:
    def test_batch_filter_agrees_with_the_interpreter(self):
        formula = col("location").eq("office") & col("threshold").ge(20.0)
        fast_batch, slow = compile_filter(formula, SCHEMA)
        assert fast_batch(ROWS[:3]) == [t for t in ROWS[:3] if slow(t)]
        assert fast_batch([]) == []

    def test_batch_filter_error_escapes_for_replay(self):
        fast_batch, slow = compile_filter(col("threshold").gt(25.0), SCHEMA)
        with pytest.raises((TypeError, FormulaError)):
            fast_batch(ROWS)  # Dee's None threshold poisons the batch
        with pytest.raises(FormulaError):
            [slow(t) for t in ROWS]


class TestCompileKeyAndCombiner:
    def test_empty_key(self):
        keys = compile_key([])
        assert keys([("a",), ("b",)]) == [(), ()]

    def test_single_key_is_the_bare_value(self):
        keys = compile_key([1])
        assert keys([("a", "x"), ("b", "y")]) == ["x", "y"]

    def test_composite_key_builds_tuples(self):
        keys = compile_key([2, 0])
        rows = [("a", "x", 1), ("b", "y", 2)]
        assert keys(rows) == [(1, "a"), (2, "b")]

    def test_combiner(self):
        combine = compile_combiner([(True, 0), (False, 2), (True, 1)])
        assert combine(("a", "b"), ("x", "y", "z")) == ("a", "z", "b")
        single = compile_combiner([(False, 0)])
        assert single(("a",), ("x",)) == ("x",)


class TestBackendTable:
    def test_unknown_backend_is_an_error(self):
        with pytest.raises(SerenaError, match="row, columnar"):
            lowerings_for("simd")

    def test_tables_cover_the_same_operators(self):
        row = lowerings_for("row")
        columnar = lowerings_for("columnar")
        assert row.keys() == columnar.keys()
        assert lowerings_for("columnar") is columnar  # cached
