"""Differential tests: every physical engine vs the naive oracle.

Every Table 4 query plus the Section 5.2 temperature/RSS scenarios run on
all four engines (naive, incremental, shared, columnar) in lockstep —
independent but identically-scripted environments, ≥ 50 instants, with
relation churn and service churn along the way.  At every instant the
engines must agree on:

* the instantaneous result relation,
* the reported delta (``inserted``/``deleted``),
* the triggered action set,

and at the end on the accumulated emitted stream, the cumulative action
log and the outbox of messages actually sent.

Within a single instant the *order* in which tuples are invoked is not
part of the algebra's semantics (a relation is a set), so per-instant
collections are compared as sets / sorted sequences.
"""

import pytest

from repro.algebra import Query, Selection, col, scan
from repro.algebra.context import EvaluationContext
from repro.continuous.continuous_query import ContinuousQuery
from repro.continuous.xdrelation import XDRelation
from repro.devices.paper_example import CAMERA_SPECS, CONTACT_ROWS, build_paper_example
from repro.devices.scenario import (
    build_rss_scenario,
    build_temperature_surveillance,
    cameras_schema,
    contacts_schema,
    temperatures_schema,
)

TICKS = 55  # ≥ 50 instants per the acceptance criteria

#: The naive oracle plus every physical engine it pins down.
ENGINES = ("naive", "incremental", "shared", "columnar")


# ---------------------------------------------------------------------------
# Table 4 queries (same plans as benchmarks/test_bench_table4_queries.py)
# ---------------------------------------------------------------------------


def q1(env):
    return (
        scan(env, "contacts")
        .select(col("name").ne("Carla"))
        .assign("text", "Bonjour!")
        .invoke("sendMessage")
        .query("Q1")
    )


def q1_prime(env):
    inner = (
        scan(env, "contacts").assign("text", "Bonjour!").invoke("sendMessage").node
    )
    return Query(Selection(inner, col("name").ne("Carla")), "Q1'")


def q2(env):
    return (
        scan(env, "cameras")
        .select(col("area").eq("office"))
        .invoke("checkPhoto")
        .select(col("quality").ge(5))
        .invoke("takePhoto")
        .project("photo")
        .query("Q2")
    )


def q2_prime(env):
    return (
        scan(env, "cameras")
        .invoke("checkPhoto")
        .select(col("quality").ge(5))
        .invoke("takePhoto")
        .select(col("area").eq("office"))
        .project("photo")
        .query("Q2'")
    )


def q3(env):
    return (
        scan(env, "temperatures")
        .window(1)
        .select(col("temperature").gt(35.5))
        .project("location", "temperature")
        .join(scan(env, "contacts"))
        .assign("text", "Hot!")
        .invoke("sendMessage")
        .query("Q3")
    )


def q4(env):
    return (
        scan(env, "temperatures")
        .window(1)
        .select(col("temperature").lt(12.0))
        .rename("location", "area")
        .join(scan(env, "cameras"))
        .invoke("checkPhoto", on_error="skip")
        .invoke("takePhoto", on_error="skip")
        .project("area", "photo", "at")
        .stream("insertion")
        .query("Q4")
    )


# ---------------------------------------------------------------------------
# Scripted environments and churn
# ---------------------------------------------------------------------------


class Rig:
    """The paper environment with journaled base tables and a stream."""

    def __init__(self):
        self.paper = build_paper_example()
        self.env = self.paper.environment
        # Swap the static contacts/cameras X-Relations for journaled
        # XD-Relations so the churn scripts can mutate them per instant.
        self.contacts = XDRelation(contacts_schema())
        self.contacts.insert_mappings(CONTACT_ROWS, instant=0)
        self.env.add_relation(self.contacts)
        self.cameras = XDRelation(cameras_schema())
        self.cameras.insert_mappings(
            [{"camera": ref, "area": area} for ref, area, _, _ in CAMERA_SPECS],
            instant=0,
        )
        self.env.add_relation(self.cameras)
        self.stream = XDRelation(temperatures_schema(), infinite=True)
        self.env.add_relation(self.stream)


def feed_stream(rig, instant):
    """Deterministic readings; office crosses 35.5 and roof crosses 12.0
    in bursts, so Q3 and Q4 both fire intermittently."""
    office = 36.0 + (instant % 5) if instant % 10 < 5 else 22.0
    roof = 10.0 if instant % 6 < 3 else 15.0
    rig.stream.insert(
        [
            ("sensor06", "office", office, instant),
            ("sensor22", "roof", roof, instant),
        ],
        instant=instant,
    )


def contact_churn(rig, instant):
    """Guests come and go: a new email contact every 8 instants, gone
    four instants later."""
    if instant % 8 == 2:
        rig.contacts.insert_mappings(
            [
                {
                    "name": f"Guest{instant}",
                    "address": f"guest{instant}@x",
                    "messenger": "email",
                }
            ],
            instant=instant,
        )
    if instant % 8 == 6 and instant >= 8:
        gone = instant - 4
        rig.contacts.delete_mappings(
            [
                {
                    "name": f"Guest{gone}",
                    "address": f"guest{gone}@x",
                    "messenger": "email",
                }
            ],
            instant=instant,
        )


def camera_churn(rig, instant):
    """The roof webcam row flaps (service stays registered)."""
    row = {"camera": "webcam07", "area": "roof"}
    if instant % 12 == 5:
        rig.cameras.delete_mappings([row], instant=instant)
    if instant % 12 == 9:
        rig.cameras.insert_mappings([row], instant=instant)


def ghost_camera_churn(rig, instant):
    """Service churn: a cameras row whose service does not exist appears
    and disappears — invocations on it fail, exercising on_error='skip'."""
    camera_churn(rig, instant)
    row = {"camera": "ghost42", "area": "roof"}
    if instant % 14 == 3:
        rig.cameras.insert_mappings([row], instant=instant)
    if instant % 14 == 10:
        rig.cameras.delete_mappings([row], instant=instant)


# ---------------------------------------------------------------------------
# The lockstep harness
# ---------------------------------------------------------------------------


def reported_delta(cq, instant):
    if cq._engine is not None:
        delta = cq._engine.reported
        return frozenset(delta.inserted), frozenset(delta.deleted)
    ctx = EvaluationContext(cq.environment, instant, cq._states, continuous=True)
    return (
        frozenset(cq.query.root.inserted(ctx)),
        frozenset(cq.query.root.deleted(ctx)),
    )


def outbox_key(outbox):
    return sorted(
        (m.instant, m.channel, m.address, m.text, m.delivered)
        for m in outbox.messages
    )


def action_strings(actions):
    return sorted(a.describe() for a in actions)


def run_differential(make_query, scripts, ticks=TICKS, engines=ENGINES):
    """Run one Table 4 query on every engine over identically-scripted
    environments; assert instant-by-instant agreement with the oracle."""
    rigs = {}
    queries = {}
    for engine in engines:
        rig = Rig()
        rigs[engine] = rig
        queries[engine] = ContinuousQuery(
            make_query(rig.env), rig.env, engine=engine
        )
    for instant in range(1, ticks + 1):
        per_engine = {}
        for engine in engines:
            rig = rigs[engine]
            for script in scripts:
                script(rig, instant)
            result = queries[engine].evaluate_at(instant)
            per_engine[engine] = (
                result.relation.tuples,
                reported_delta(queries[engine], instant),
                frozenset(result.actions),
            )
        naive = per_engine["naive"]
        for engine in engines[1:]:
            got = per_engine[engine]
            assert got[0] == naive[0], f"{engine} relation differs at {instant}"
            assert got[1] == naive[1], f"{engine} delta differs at {instant}"
            assert got[2] == naive[2], f"{engine} actions differ at {instant}"
    cq_n = queries["naive"]
    for engine in engines[1:]:
        cq = queries[engine]
        assert sorted(cq.emitted) == sorted(cq_n.emitted), engine
        assert action_strings(cq.actions) == action_strings(cq_n.actions), engine
        assert [a.describe() for a in cq.action_log] == [
            a.describe() for a in cq_n.action_log
        ], engine
        assert outbox_key(rigs[engine].paper.outbox) == outbox_key(
            rigs["naive"].paper.outbox
        ), engine
    return queries


@pytest.mark.parametrize(
    ("make", "scripts"),
    [
        (q1, (contact_churn,)),
        (q1_prime, (contact_churn,)),
        (q2, (camera_churn,)),
        (q2_prime, (camera_churn,)),
        (q3, (feed_stream, contact_churn)),
        (q4, (feed_stream, ghost_camera_churn)),
    ],
    ids=["q1", "q1_prime", "q2", "q2_prime", "q3", "q4"],
)
def test_table4_differential(make, scripts):
    queries = run_differential(make, scripts)
    # The scripts must actually produce work, or the test proves nothing.
    cq = queries["incremental"]
    assert cq.action_log or cq.emitted or cq.last_result.relation.tuples


def test_q4_emits_and_skips_the_ghost_camera():
    """Sanity on the Q4 run: the stream emitted photos and the ghost
    camera never produced one (its invocations failed and were skipped)."""
    queries = run_differential(q4, (feed_stream, ghost_camera_churn))
    emitted = queries["incremental"].emitted
    assert emitted
    schema = queries["incremental"].query.schema
    areas = {schema.mapping_from_tuple(t)["area"] for _, t in emitted}
    assert areas == {"roof"}


# ---------------------------------------------------------------------------
# Section 5.2 scenarios with service churn
# ---------------------------------------------------------------------------


def drive_temperature_scenario(engine):
    scenario = build_temperature_surveillance(engine=engine)
    snapshots = []
    for _ in range(TICKS):
        now = scenario.run(1)
        if now == 12:
            # Hot-plug: a heater pushes the office over its 28° threshold,
            # a freezer pulls the basement sensor under the 12° photo bar.
            scenario.add_sensor("sensor90", "office", base=31.0)
            scenario.add_sensor("sensor91", "roof", base=8.0)
        if now == 30:
            scenario.remove_sensor("sensor90")
        if now == 40:
            # Service churn on the gateway: jabber goes away while
            # Francois's contact row remains (on_error='skip' path).
            scenario.pems.create_local_erm("gateway").deregister("jabber")
        snapshots.append(
            {
                name: cq.last_result.relation.tuples
                for name, cq in scenario.queries.items()
            }
        )
    return scenario, snapshots


def test_temperature_scenario_differential():
    naive, naive_snaps = drive_temperature_scenario("naive")
    for engine in ENGINES[1:]:
        run, snaps = drive_temperature_scenario(engine)
        assert snaps == naive_snaps, engine
        for name in naive.queries:
            cq_n, cq = naive.queries[name], run.queries[name]
            assert sorted(cq.emitted) == sorted(cq_n.emitted), (engine, name)
            assert action_strings(cq.actions) == action_strings(
                cq_n.actions
            ), (engine, name)
            assert [a.describe() for a in cq.action_log] == [
                a.describe() for a in cq_n.action_log
            ], (engine, name)
        assert outbox_key(run.outbox) == outbox_key(naive.outbox), engine
    # The churn script had observable consequences on every engine.
    assert naive.outbox.messages
    assert naive.queries["cold-photos"].emitted


def drive_rss_scenario(engine):
    scenario = build_rss_scenario(engine=engine, recipient="Francois")
    snapshots = []
    for _ in range(TICKS):
        now = scenario.run(1)
        if now == 35:
            # Francois reads jabber; losing the gateway mid-run leaves his
            # contact row pointing at a dead service (skip + retry path).
            scenario.pems.create_local_erm("gateway").deregister("jabber")
        snapshots.append(
            {
                name: cq.last_result.relation.tuples
                for name, cq in scenario.queries.items()
            }
        )
    return scenario, snapshots


def test_rss_scenario_differential():
    naive, naive_snaps = drive_rss_scenario("naive")
    for engine in ENGINES[1:]:
        run, snaps = drive_rss_scenario(engine)
        assert snaps == naive_snaps, engine
        for name in naive.queries:
            cq_n, cq = naive.queries[name], run.queries[name]
            assert action_strings(cq.actions) == action_strings(
                cq_n.actions
            ), (engine, name)
        assert outbox_key(run.outbox) == outbox_key(naive.outbox), engine
    # Matching news flowed, and some alert was attempted before the churn.
    assert any(snap["matching-news"] for snap in naive_snaps)
