"""Unit tests for plan fingerprinting and the shared-plan registry."""

import pytest

from repro.algebra import Query, Selection, col, plan_fingerprint, scan
from repro.continuous.continuous_query import ContinuousQuery
from repro.continuous.xdrelation import XDRelation
from repro.errors import SerenaError
from repro.exec.executors import (
    InvocationExec,
    ScanExec,
    SelectionExec,
    WindowExec,
)
from repro.exec.shared import SharedEngine, SharedPlanRegistry
from repro.model.attributes import Attribute
from repro.model.binding import BindingPattern
from repro.model.environment import PervasiveEnvironment
from repro.model.prototypes import Prototype
from repro.model.services import Service
from repro.model.types import DataType
from repro.model.xschema import ExtendedRelationSchema

ECHO = Prototype(
    "echo",
    ExtendedRelationSchema("echoIn", [Attribute("item", DataType.STRING)]),
    ExtendedRelationSchema("echoOut", [Attribute("label", DataType.STRING)]),
)


def items_schema():
    return ExtendedRelationSchema(
        "items",
        [
            Attribute("item", DataType.STRING),
            Attribute("device", DataType.SERVICE),
            Attribute("value", DataType.REAL),
            Attribute("label", DataType.STRING),
        ],
        virtual={"label"},
        binding_patterns=[BindingPattern(ECHO, "device")],
    )


def build_env():
    env = PervasiveEnvironment()
    items = XDRelation(items_schema())
    items.insert(
        [(f"item{i}", "dev", float(i)) for i in range(6)], instant=0
    )
    env.add_relation(items)
    readings = XDRelation(
        ExtendedRelationSchema(
            "readings",
            [Attribute("item", DataType.STRING), Attribute("value", DataType.REAL)],
        ),
        infinite=True,
    )
    env.add_relation(readings)
    env.declare_prototype(ECHO)
    env.registry.register(
        Service(
            "dev",
            {ECHO: lambda inputs, instant: [{"label": inputs["item"].upper()}]},
        )
    )
    return env, items


def prefix(env):
    return scan(env, "items").select(col("value").ge(2.0))


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


class TestFingerprint:
    def test_identical_plans_fingerprint_identically(self):
        env, _ = build_env()
        assert plan_fingerprint(prefix(env).query()) == plan_fingerprint(
            prefix(env).query()
        )

    def test_rewrite_equivalent_plans_coincide(self):
        """σ merged vs cascaded, σ above vs below β (Table 5) — one key."""
        env, _ = build_env()
        merged = (
            scan(env, "items")
            .select(col("value").ge(2.0) & col("item").ne("item5"))
            .query()
        )
        cascaded = (
            scan(env, "items")
            .select(col("value").ge(2.0))
            .select(col("item").ne("item5"))
            .query()
        )
        assert plan_fingerprint(merged) == plan_fingerprint(cascaded)
        below = prefix(env).invoke("echo").query()
        inner = scan(env, "items").invoke("echo").node
        above = Query(Selection(inner, col("value").ge(2.0)))
        assert plan_fingerprint(below) == plan_fingerprint(above)

    def test_different_plans_differ(self):
        env, _ = build_env()
        a = scan(env, "items").select(col("value").ge(2.0)).query()
        b = scan(env, "items").select(col("value").ge(3.0)).query()
        assert plan_fingerprint(a) != plan_fingerprint(b)


# ---------------------------------------------------------------------------
# Registry: identity, refcounts, exclusions
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_common_prefix_shares_executor_instances(self):
        env, _ = build_env()
        registry = SharedPlanRegistry(env)
        a = SharedEngine(prefix(env).project("item").query(), env, registry)
        b = SharedEngine(prefix(env).project("value").query(), env, registry)
        shared = registry.lookup(prefix(env).node)
        assert shared is not None
        a_execs = {id(e) for e in a.executors()}
        b_execs = {id(e) for e in b.executors()}
        assert id(shared) in a_execs and id(shared) in b_execs
        assert a.root is not b.root  # distinct projections stay private...
        # ...no: distinct projections are themselves shareable but differ
        # structurally, so each has its own entry.
        assert registry.lookup(prefix(env).project("item").node) is a.root

    def test_rewrite_equivalent_queries_share_the_root(self):
        env, _ = build_env()
        registry = SharedPlanRegistry(env)
        merged = (
            scan(env, "items")
            .select(col("value").ge(2.0) & col("item").ne("item5"))
            .query()
        )
        cascaded = (
            scan(env, "items")
            .select(col("value").ge(2.0))
            .select(col("item").ne("item5"))
            .query()
        )
        a = SharedEngine(merged, env, registry)
        b = SharedEngine(cascaded, env, registry)
        assert a.root is b.root

    def test_refcounts_and_release(self):
        env, _ = build_env()
        registry = SharedPlanRegistry(env)
        a = SharedEngine(prefix(env).query(), env, registry)
        assert len(registry) == 2  # scan + selection
        b = SharedEngine(prefix(env).query(), env, registry)
        assert len(registry) == 2
        assert all(count == 2 for count in registry.refcounts().values())
        a.release()
        assert len(registry) == 2
        assert all(count == 1 for count in registry.refcounts().values())
        a.release()  # idempotent
        assert all(count == 1 for count in registry.refcounts().values())
        b.release()
        assert len(registry) == 0

    def test_invocations_stay_private(self):
        env, _ = build_env()
        registry = SharedPlanRegistry(env)
        query = prefix(env).invoke("echo")
        a = SharedEngine(query.query(), env, registry)
        b = SharedEngine(query.query(), env, registry)
        a_beta = [e for e in a.executors() if isinstance(e, InvocationExec)]
        b_beta = [e for e in b.executors() if isinstance(e, InvocationExec)]
        assert a_beta and b_beta and a_beta[0] is not b_beta[0]
        # ...but the subplan below the invocation is shared.
        assert a_beta[0].children[0] is b_beta[0].children[0]

    def test_window_shared_only_over_journaled_scan(self):
        env, _ = build_env()
        registry = SharedPlanRegistry(env)
        journaled = scan(env, "readings").window(2).query()
        a = SharedEngine(journaled, env, registry)
        b = SharedEngine(scan(env, "readings").window(2).query(), env, registry)
        aw = [e for e in a.executors() if isinstance(e, WindowExec)]
        bw = [e for e in b.executors() if isinstance(e, WindowExec)]
        assert aw[0] is bw[0]
        # A window over a *derived* stream (W over S) has no journal to
        # replay, so it stays private; the stream below it is shared.
        derived = prefix(env).stream("insertion").window(2)
        c = SharedEngine(derived.query(), env, registry)
        d = SharedEngine(derived.query(), env, registry)
        cw = [e for e in c.executors() if isinstance(e, WindowExec)]
        dw = [e for e in d.executors() if isinstance(e, WindowExec)]
        assert cw[0] is not dw[0]  # derived window: private
        assert cw[0].children[0] is dw[0].children[0]

    def test_registry_environment_must_match(self):
        env, _ = build_env()
        other, _ = build_env()
        registry = SharedPlanRegistry(env)
        with pytest.raises(SerenaError, match="different environment"):
            SharedEngine(prefix(other).query(), other, registry)


# ---------------------------------------------------------------------------
# Fresh-over-warm: late registration sees what a fresh query would
# ---------------------------------------------------------------------------


class TestLateRegistration:
    def churn(self, env, instant):
        items = env.relation("items")
        items.insert([(f"new{instant}", "dev", 10.0 + instant)], instant=instant)
        items.delete([(f"item{instant % 6}", "dev", float(instant % 6))],
                     instant=instant)
        env.relation("readings").insert(
            [(f"r{instant}", float(instant))], instant=instant
        )

    @pytest.mark.parametrize(
        "make",
        [
            lambda env: prefix(env).project("item").query(),
            lambda env: prefix(env).query(),
            lambda env: scan(env, "readings").window(3).query(),
            lambda env: prefix(env).stream("insertion").query(),
            lambda env: prefix(env).invoke("echo").query(),
        ],
        ids=["projection", "selection", "window", "stream", "invocation"],
    )
    def test_late_query_matches_fresh_naive(self, make):
        env, items = build_env()
        registry = SharedPlanRegistry(env)
        warm_queries = [
            ContinuousQuery(prefix(env).query(), env, engine="shared",
                            shared=registry),
            ContinuousQuery(scan(env, "readings").window(3).query(), env,
                            engine="shared", shared=registry),
        ]
        for instant in range(1, 5):
            self.churn(env, instant)
            for warm in warm_queries:
                warm.evaluate_at(instant)
        # Instant 5: a structurally overlapping query registers late, over
        # subplans that are already warm.
        self.churn(env, 5)
        late = ContinuousQuery(make(env), env, engine="shared", shared=registry)
        oracle = ContinuousQuery(make(env), env, engine="naive")
        for instant in range(5, 12):
            if instant > 5:
                self.churn(env, instant)
            a = late.evaluate_at(instant)
            b = oracle.evaluate_at(instant)
            for warm in warm_queries:
                warm.evaluate_at(instant)
            assert a.relation.tuples == b.relation.tuples, instant
            assert frozenset(a.actions) == frozenset(b.actions), instant
        assert sorted(late.emitted) == sorted(oracle.emitted)


# ---------------------------------------------------------------------------
# The per-instant journal read cache
# ---------------------------------------------------------------------------


class CountingXDRelation(XDRelation):
    """An XD-Relation that counts its journal reads."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.journal_reads = 0

    def changes_between(self, start, stop):
        self.journal_reads += 1
        return super().changes_between(start, stop)


def readings_schema():
    return ExtendedRelationSchema(
        "readings",
        [Attribute("item", DataType.STRING), Attribute("value", DataType.REAL)],
    )


class TestJournalCache:
    def test_cache_resets_when_the_instant_advances(self):
        env, _ = build_env()
        registry = SharedPlanRegistry(env)
        cache = registry.journal_cache(5)
        cache["marker"] = 1
        assert registry.journal_cache(5) is cache  # same instant: same dict
        fresh = registry.journal_cache(6)
        assert fresh == {} and fresh is not cache

    def test_journal_chunks_reads_once_per_slice(self):
        from repro.algebra.context import EvaluationContext
        from repro.exec.executors import journal_chunks

        env = PervasiveEnvironment()
        readings = CountingXDRelation(readings_schema(), infinite=True)
        env.add_relation(readings)
        readings.insert([("a", 1.0)], instant=1)
        ctx = EvaluationContext(env, 3)
        ctx.journal_cache = {}
        first = journal_chunks(ctx, readings, 0, 3)
        assert journal_chunks(ctx, readings, 0, 3) is first
        assert readings.journal_reads == 1
        journal_chunks(ctx, readings, 1, 3)  # a different slice reads again
        assert readings.journal_reads == 2
        ctx.journal_cache = None  # no cache installed: straight through
        journal_chunks(ctx, readings, 0, 3)
        assert readings.journal_reads == 3

    def test_shared_engines_fold_the_journal_once_per_tick(self):
        env = PervasiveEnvironment()
        readings = CountingXDRelation(readings_schema(), infinite=True)
        env.add_relation(readings)
        registry = SharedPlanRegistry(env)
        engines = [
            SharedEngine(
                scan(env, "readings").window(2).query("a"), env, registry
            ),
            SharedEngine(
                scan(env, "readings").window(3).query("b"), env, registry
            ),
            SharedEngine(
                scan(env, "readings")
                .window(2)
                .select(col("value").ge(0.0))
                .query("c"),
                env,
                registry,
            ),
        ]
        per_tick = []
        for instant in range(1, 9):
            readings.insert([(f"r{instant}", float(instant))], instant=instant)
            before = readings.journal_reads
            for engine in engines:
                engine.tick(instant)
            per_tick.append(readings.journal_reads - before)
        # After warmup the scan and both windows read the same journal
        # slice; the registry cache serves it with a single read.
        assert all(reads == 1 for reads in per_tick[3:]), per_tick
