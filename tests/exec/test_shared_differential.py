"""Differential tests: shared-subplan execution vs the naive oracle.

Three layers, per the acceptance criteria (≥ 50 instants, churn along
the way):

* every Table 4 query runs on engine="shared" (private registry) in
  lockstep with the naive engine — same scripts as
  :mod:`tests.exec.test_differential`;
* a *multi-query* workload shares one registry and runs under the
  quiescence-aware :class:`TickScheduler`, with queries registered and
  deregistered mid-run; every instant the relation, reported delta and
  action set of each query must match a naive oracle evaluated every
  tick — while the scheduler demonstrably skips work;
* the Section 5.2 scenarios drive the full PEMS processor path
  (discovery sync, per-instant invocation memo, shared registry) with
  engine="shared".
"""

from repro.continuous.continuous_query import ContinuousQuery
from repro.exec.scheduler import TickScheduler
from repro.exec.shared import SharedPlanRegistry

import pytest

from tests.exec.test_differential import (
    TICKS,
    Rig,
    action_strings,
    camera_churn,
    contact_churn,
    drive_rss_scenario,
    drive_temperature_scenario,
    feed_stream,
    ghost_camera_churn,
    outbox_key,
    q1,
    q1_prime,
    q2,
    q2_prime,
    q3,
    q4,
)

# ---------------------------------------------------------------------------
# Single-query lockstep: shared engine vs naive
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    ("make", "scripts"),
    [
        (q1, (contact_churn,)),
        (q1_prime, (contact_churn,)),
        (q2, (camera_churn,)),
        (q3, (feed_stream, contact_churn)),
        (q4, (feed_stream, ghost_camera_churn)),
    ],
    ids=["q1", "q1_prime", "q2", "q3", "q4"],
)
def test_table4_shared_differential(make, scripts):
    rigs, queries = {}, {}
    for engine in ("naive", "shared"):
        rig = Rig()
        rigs[engine] = rig
        queries[engine] = ContinuousQuery(
            make(rig.env), rig.env, engine=engine
        )
    for instant in range(1, TICKS + 1):
        per_engine = {}
        for engine in ("naive", "shared"):
            rig = rigs[engine]
            for script in scripts:
                script(rig, instant)
            result = queries[engine].evaluate_at(instant)
            delta = queries[engine].last_reported_delta
            per_engine[engine] = (
                result.relation.tuples,
                frozenset(delta.inserted),
                frozenset(delta.deleted),
                frozenset(result.actions),
            )
        assert per_engine["shared"] == per_engine["naive"], instant
    assert sorted(queries["shared"].emitted) == sorted(queries["naive"].emitted)
    assert action_strings(queries["shared"].actions) == action_strings(
        queries["naive"].actions
    )
    assert outbox_key(rigs["shared"].paper.outbox) == outbox_key(
        rigs["naive"].paper.outbox
    )


# ---------------------------------------------------------------------------
# Multi-query workload under the scheduler, with registration churn
# ---------------------------------------------------------------------------


class SharedRunner:
    """Shared registry + tick scheduler, the query-processor discipline."""

    def __init__(self, backend="row"):
        self.rig = Rig()
        self.registry = SharedPlanRegistry(self.rig.env, backend=backend)
        self.scheduler = TickScheduler(self.rig.env)
        self.queries: dict[str, ContinuousQuery] = {}

    def register(self, name, make):
        cq = ContinuousQuery(
            make(self.rig.env), self.rig.env, engine="shared",
            shared=self.registry,
        )
        self.queries[name] = cq
        self.scheduler.register(name, cq)

    def deregister(self, name):
        cq = self.queries.pop(name)
        self.scheduler.deregister(name)
        cq.release()

    def tick(self, instant):
        affected = self.scheduler.plan(instant)
        observed = {}
        for name in sorted(self.queries):
            cq = self.queries[name]
            try:
                if name in affected:
                    result = cq.evaluate_at(instant)
                    self.scheduler.evaluated(name, True)
                else:
                    result = cq.carry_forward(instant)
                    self.scheduler.skipped(name)
            except Exception as exc:
                self.scheduler.evaluated(name, False)
                observed[name] = ("failed", type(exc).__name__)
                continue
            delta = cq.last_reported_delta
            observed[name] = (
                result.relation.tuples,
                frozenset(delta.inserted),
                frozenset(delta.deleted),
                frozenset(result.actions),
            )
        return observed


class NaiveRunner:
    """The oracle: every registered query re-evaluated at every instant."""

    def __init__(self):
        self.rig = Rig()
        self.queries: dict[str, ContinuousQuery] = {}

    def register(self, name, make):
        self.queries[name] = ContinuousQuery(
            make(self.rig.env), self.rig.env, engine="naive"
        )

    def deregister(self, name):
        del self.queries[name]

    def tick(self, instant):
        observed = {}
        for name in sorted(self.queries):
            cq = self.queries[name]
            try:
                result = cq.evaluate_at(instant)
            except Exception as exc:
                observed[name] = ("failed", type(exc).__name__)
                continue
            delta = cq.last_reported_delta
            observed[name] = (
                result.relation.tuples,
                frozenset(delta.inserted),
                frozenset(delta.deleted),
                frozenset(result.actions),
            )
        return observed


#: instant → registration ops applied (in order) before that tick runs.
CHURN_OPS = {
    10: [("register", "q1p", q1_prime), ("register", "q2p", q2_prime)],
    20: [("deregister", "q1", None)],
    28: [("register", "q1", q1)],  # re-shares the warm Q1' subplans
    36: [("register", "q4", q4)],
    44: [("deregister", "q2p", None)],
}

SCRIPTS = (feed_stream, contact_churn, ghost_camera_churn)


@pytest.mark.parametrize("backend", ["row", "columnar"])
def test_multi_query_scheduler_differential(backend):
    shared, naive = SharedRunner(backend=backend), NaiveRunner()
    for runner in (shared, naive):
        runner.register("q1", q1)
        runner.register("q2", q2)
        runner.register("q3", q3)
    for instant in range(1, TICKS + 1):
        for op, name, make in CHURN_OPS.get(instant, ()):
            for runner in (shared, naive):
                if op == "register":
                    runner.register(name, make)
                else:
                    runner.deregister(name)
        for runner in (shared, naive):
            for script in SCRIPTS:
                script(runner.rig, instant)
        expected = naive.tick(instant)
        observed = shared.tick(instant)
        assert observed.keys() == expected.keys()
        for name in expected:
            assert observed[name] == expected[name], (name, instant)
    # End-state parity: streams, actions and the messages actually sent.
    for name in shared.queries:
        cq_s, cq_n = shared.queries[name], naive.queries[name]
        assert sorted(cq_s.emitted) == sorted(cq_n.emitted), name
        assert action_strings(cq_s.actions) == action_strings(cq_n.actions), name
        assert [a.describe() for a in cq_s.action_log] == [
            a.describe() for a in cq_n.action_log
        ], name
    assert outbox_key(shared.rig.paper.outbox) == outbox_key(
        naive.rig.paper.outbox
    )
    # Sharing and quiescence actually happened (or the test proves
    # little): Q1/Q1' and Q2/Q2' are Table 5-equivalent, so the registry
    # holds fewer entries than the sum of private plans would...
    assert shared.registry.total_refcount > len(shared.registry)
    # ...and the relational queries skipped quiescent instants.
    assert shared.scheduler.skips > 0
    stats = shared.scheduler.stats
    assert stats["evaluations"] + stats["skips"] > 0
    if backend == "columnar":
        # The registry lowered to the columnar backend: the plans are
        # mixed trees — batch executors for the Table 3 core, row
        # executors for β and friends — interoperating on shared leases.
        backends = {
            entry.executor.backend for entry in shared.registry._entries.values()
        }
        assert "columnar" in backends


def test_deregistration_drains_the_registry():
    """After every query deregisters, no executor state is leaked."""
    shared = SharedRunner()
    shared.register("q1", q1)
    shared.register("q1p", q1_prime)
    shared.register("q2", q2)
    for instant in range(1, 11):
        for script in SCRIPTS:
            script(shared.rig, instant)
        shared.tick(instant)
    for name in list(shared.queries):
        shared.deregister(name)
    assert len(shared.registry) == 0
    assert shared.registry.total_refcount == 0
    assert len(shared.scheduler) == 0


# ---------------------------------------------------------------------------
# Section 5.2 scenarios through the full PEMS processor path
# ---------------------------------------------------------------------------


def test_temperature_scenario_shared_differential():
    naive, naive_snaps = drive_temperature_scenario("naive")
    shared, shared_snaps = drive_temperature_scenario("shared")
    assert shared_snaps == naive_snaps
    for name in naive.queries:
        cq_n, cq_s = naive.queries[name], shared.queries[name]
        assert sorted(cq_s.emitted) == sorted(cq_n.emitted), name
        assert action_strings(cq_s.actions) == action_strings(cq_n.actions), name
    assert outbox_key(shared.outbox) == outbox_key(naive.outbox)
    assert naive.outbox.messages  # churn had observable consequences


def test_rss_scenario_shared_differential():
    naive, naive_snaps = drive_rss_scenario("naive")
    shared, shared_snaps = drive_rss_scenario("shared")
    assert shared_snaps == naive_snaps
    for name in naive.queries:
        cq_n, cq_s = naive.queries[name], shared.queries[name]
        assert sorted(cq_s.emitted) == sorted(cq_n.emitted), name
        assert action_strings(cq_s.actions) == action_strings(cq_n.actions), name
    assert outbox_key(shared.outbox) == outbox_key(naive.outbox)
