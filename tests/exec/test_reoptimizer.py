"""In-place plan swapping and the feedback-driven re-optimizer.

``ContinuousQuery.swap_plan`` is the executor-replacement primitive both
the substitution machinery and the :class:`FeedbackReoptimizer` build on:
it must preserve the two-delta contract across the swap instant (netted
first post-swap delta, frozen pre-swap delta) and refuse the three query
classes where a cold plan would change observable semantics.
"""

import pytest

from repro.algebra import Query, Selection, col, scan
from repro.continuous.continuous_query import ContinuousQuery
from repro.continuous.xdrelation import XDRelation
from repro.errors import SerenaError
from repro.model.binding import BindingPattern
from repro.exec.reoptimizer import (
    FeedbackReoptimizer,
    ReoptimizationEvent,
    _Watch,
)
from repro.exec.scheduler import TickScheduler
from repro.exec.shared import SharedPlanRegistry
from repro.model.attributes import Attribute
from repro.model.prototypes import Prototype
from repro.model.types import DataType
from repro.model.xschema import ExtendedRelationSchema
from repro.pems.pems import PEMS

from tests.exec.test_shared import build_env, prefix


def merged(env):
    return (
        scan(env, "items")
        .select(col("value").ge(2.0) & col("item").ne("item5"))
        .query("probe")
    )


def cascaded(env):
    return (
        scan(env, "items")
        .select(col("value").ge(2.0))
        .select(col("item").ne("item5"))
        .query("probe")
    )


def drive(cq, control, items, first, last):
    """Tick instants [first, last], churning one row per instant, and
    assert relation + reported delta agree with the control query."""
    for instant in range(first, last + 1):
        items.insert([(f"hot{instant}", "dev", 9.0)], instant=instant)
        a = cq.evaluate_at(instant)
        b = control.evaluate_at(instant)
        assert frozenset(a.relation) == frozenset(b.relation), instant
        assert cq.last_reported_delta == control.last_reported_delta, instant


class TestSwapPlan:
    @pytest.mark.parametrize("engine", ["incremental", "shared"])
    def test_equivalent_swap_preserves_the_two_delta_contract(self, engine):
        env, items = build_env()
        shared = SharedPlanRegistry(env) if engine == "shared" else None
        cq = ContinuousQuery(merged(env), env, engine=engine, shared=shared)
        control = ContinuousQuery(merged(env), env, engine="naive")
        drive(cq, control, items, 1, 3)
        cq.swap_plan(cascaded(env))
        assert cq.swaps == 1
        # Until the new plan's first tick, the frozen pre-swap delta keeps
        # describing the evaluation that already happened.
        assert cq.last_reported_delta == control.last_reported_delta
        drive(cq, control, items, 4, 8)

    def test_first_post_swap_delta_is_netted_not_a_rematerialization(self):
        env, items = build_env()
        cq = ContinuousQuery(merged(env), env, engine="incremental")
        cq.evaluate_at(1)
        assert len(cq.last_result.relation) > 1
        cq.swap_plan(cascaded(env))
        items.insert([("hot2", "dev", 9.0)], instant=2)
        cq.evaluate_at(2)
        # A cold plan's own delta would re-insert the whole relation; the
        # netted delta is just the tick's actual change.
        assert cq.last_reported_delta.inserted == frozenset(
            {("hot2", "dev", 9.0)}
        )
        assert cq.last_reported_delta.deleted == frozenset()

    def test_naive_engine_is_not_swappable(self):
        env, _ = build_env()
        cq = ContinuousQuery(merged(env), env, engine="naive")
        assert not cq.swappable
        with pytest.raises(SerenaError, match="not swappable"):
            cq.swap_plan(cascaded(env))

    def test_stream_queries_are_not_swappable(self):
        env, _ = build_env()
        query = prefix(env).stream("insertion").query("s")
        cq = ContinuousQuery(query, env, engine="incremental")
        assert not cq.swappable

    def test_active_binding_patterns_are_not_swappable(self):
        env, _ = build_env()
        siren = Prototype(
            "siren",
            ExtendedRelationSchema(
                "sirenIn", [Attribute("item", DataType.STRING)]
            ),
            ExtendedRelationSchema(
                "sirenOut", [Attribute("label", DataType.STRING)]
            ),
            active=True,
        )
        env.declare_prototype(siren)
        alarms = XDRelation(
            ExtendedRelationSchema(
                "alarms",
                [
                    Attribute("item", DataType.STRING),
                    Attribute("device", DataType.SERVICE),
                    Attribute("label", DataType.STRING),
                ],
                virtual={"label"},
                binding_patterns=[BindingPattern(siren, "device")],
            )
        )
        env.add_relation(alarms)
        query = scan(env, "alarms").invoke("siren").query("a")
        cq = ContinuousQuery(query, env, engine="incremental")
        assert not cq.swappable

    def test_schema_mismatch_is_refused(self):
        env, _ = build_env()
        cq = ContinuousQuery(merged(env), env, engine="incremental")
        narrower = prefix(env).project("item").query("probe")
        with pytest.raises(SerenaError, match="output"):
            cq.swap_plan(narrower)


class TestSchedulerRefresh:
    def test_refresh_unknown_name_raises(self):
        env, _ = build_env()
        scheduler = TickScheduler(env)
        cq = ContinuousQuery(merged(env), env, engine="incremental")
        with pytest.raises(SerenaError):
            scheduler.refresh("ghost", cq)

    def test_refreshed_query_is_fresh_again(self):
        env, items = build_env()
        scheduler = TickScheduler(env)
        cq = ContinuousQuery(merged(env), env, engine="incremental")
        scheduler.register("probe", cq)
        assert "probe" in scheduler.plan(1)
        cq.evaluate_at(1)
        scheduler.evaluated("probe", True)
        # Quiesced: nothing changed, so instant 2 would skip it...
        assert "probe" not in scheduler.plan(2)
        cq.carry_forward(2)
        scheduler.skipped("probe")
        # ...but a refresh (the post-swap re-index) marks it fresh.
        cq.swap_plan(cascaded(env))
        scheduler.refresh("probe", cq)
        assert "probe" in scheduler.plan(3)


# ---------------------------------------------------------------------------
# The feedback loop
# ---------------------------------------------------------------------------


def readings_schema():
    return ExtendedRelationSchema(
        "readings",
        [
            Attribute("item", DataType.STRING),
            Attribute("value", DataType.REAL),
        ],
    )


def catalog_schema():
    return ExtendedRelationSchema(
        "catalog",
        [
            Attribute("item", DataType.STRING),
            Attribute("label", DataType.STRING),
        ],
    )


def build_pems(engine="incremental", rows=20):
    """A join whose selection sits *above* the join — exactly the shape
    the optimizer re-lowers once the readings churn dwarfs the estimate
    sampled at registration (when ``readings`` was empty).  A stream
    source feeds ``rows`` fresh readings every instant (distinct values
    per tick, so the 1-instant window genuinely churns)."""
    pems = PEMS(engine=engine)
    pems.tables.create_relation(readings_schema(), infinite=True)
    pems.tables.create_relation(catalog_schema())
    pems.tables.insert(
        "catalog",
        [{"item": f"item{i}", "label": f"L{i}"} for i in range(4)],
    )

    def feed(instant):
        pems.tables.insert(
            "readings",
            [
                {"item": f"item{i % 4}", "value": float(instant * 100 + i + 1)}
                for i in range(rows)
            ],
        )

    pems.add_stream_source(feed)
    query = (
        scan(pems.environment, "readings")
        .window(1)
        .join(scan(pems.environment, "catalog"))
        .select(col("value").gt(0.0))
        .query("probe")
    )
    cq = pems.queries.register_continuous(query)
    return pems, cq


class TestFeedbackReoptimizer:
    def test_parameter_validation(self):
        env = build_env()[0]
        with pytest.raises(ValueError, match="divergence"):
            FeedbackReoptimizer(env, divergence=1.0)
        with pytest.raises(ValueError, match="min_window"):
            FeedbackReoptimizer(env, min_window=0)

    def test_non_swappable_queries_are_not_watched(self):
        env, _ = build_env()
        reopt = FeedbackReoptimizer(env)
        cq = ContinuousQuery(merged(env), env, engine="naive")
        assert reopt.watch("probe", cq, 0) is False
        assert reopt.watched == ()

    def test_divergence_triggers_a_swap_and_stays_correct(self):
        pems, cq = build_pems()
        reopt = pems.queries.enable_reoptimization(min_window=3, cooldown=4)
        assert reopt.watched == ("probe",)
        control = pems.queries.register_continuous(
            (
                scan(pems.environment, "readings")
                .window(1)
                .join(scan(pems.environment, "catalog"))
                .select(col("value").gt(0.0))
                .query("control")
            ),
            engine="naive",
        )
        original_root = cq.query.root
        for _ in range(10):
            pems.run(1)
            assert frozenset(cq.last_result.relation) == frozenset(
                control.last_result.relation
            )
            assert cq.last_reported_delta == control.last_reported_delta
        # The estimate was sampled over an empty readings relation; 20
        # rows/tick diverges far beyond 2x, so the loop re-lowered the
        # plan — and found a structurally better one (pushed selection).
        assert reopt.log, reopt.report()
        first = reopt.log[0]
        assert first.swapped
        assert first.observed >= 2.0 * max(first.estimate, 1e-9)
        assert cq.swaps >= 1
        assert cq.query.root != original_root
        assert "swapped plan" in first.describe()

    def test_decision_arms_cooldown_and_resets_the_window(self):
        pems, _ = build_pems()
        reopt = pems.queries.enable_reoptimization(min_window=2, cooldown=50)
        for _ in range(12):
            pems.run(1)
        # Divergence persists the whole run, but after the first decision
        # the cooldown holds re-examination off until instant+50.
        assert len(reopt.log) == 1

    def test_matching_observations_never_trigger(self):
        """The decision rule itself: within-factor observations are left
        alone; 2x in either direction (or any activity against a zero
        estimate) diverges only after a full window."""
        env = build_env()[0]
        reopt = FeedbackReoptimizer(env, divergence=2.0, min_window=2)
        watch = _Watch(estimate=10.0)
        watch.window.extend([12, 12])  # within 2x: no trigger
        assert reopt._divergent(watch) is None
        watch.window.clear()
        watch.window.extend([25, 25])  # 2.5x over: trigger
        assert reopt._divergent(watch) == 25.0
        watch.window.clear()
        watch.window.extend([3, 3])  # 3.3x under: trigger
        assert reopt._divergent(watch) == 3.0
        watch.window.clear()
        watch.window.append(50)  # half a window: never decide
        assert reopt._divergent(watch) is None
        # A zero estimate diverges on any observed activity, but a quiet
        # query over a zero estimate stays put.
        quiet = _Watch(estimate=0.0)
        quiet.window.extend([0, 0])
        assert reopt._divergent(quiet) is None

    def test_deregistration_unwatches(self):
        pems, _ = build_pems()
        reopt = pems.queries.enable_reoptimization()
        assert reopt.watched == ("probe",)
        pems.queries.deregister_continuous("probe")
        assert reopt.watched == ()

    def test_report_and_event_shapes(self):
        event = ReoptimizationEvent(7, "q", 1.5, 12.0, False)
        assert event.describe() == (
            "@7 q: estimated delta 1.50/tick, observed 12.00/tick — kept plan"
        )
        pems, _ = build_pems()
        reopt = pems.queries.enable_reoptimization(min_window=3, cooldown=4)
        for _ in range(5):
            pems.run(1)
        report = reopt.report()
        assert "probe" in report["watched"]
        assert report["decisions"] == [e.describe() for e in reopt.log]
