"""Unit tests for the fault-tolerance policy and health state machine."""

import pytest

from repro.devices.prototypes import GET_TEMPERATURE
from repro.devices.sensors import TemperatureSensor
from repro.errors import (
    InvocationError,
    ServiceUnavailableError,
    UnknownServiceError,
)
from repro.model.invocation_policy import (
    PERMISSIVE_POLICY,
    HealthState,
    HealthTracker,
    InvocationPolicy,
)
from repro.model.services import Service, ServiceRegistry


def broken_sensor(reference: str = "s1") -> Service:
    def handler(inputs, instant):
        raise RuntimeError("boom")

    return Service(reference, {GET_TEMPERATURE: handler})


def good_sensor(reference: str = "s1") -> Service:
    return TemperatureSensor(reference, "office").as_service()


class TestInvocationPolicy:
    def test_default_is_permissive(self):
        assert not PERMISSIVE_POLICY.enabled
        assert InvocationPolicy(backoff=1).enabled
        assert InvocationPolicy(failure_threshold=3).enabled
        assert InvocationPolicy(max_failures_per_tick=1).enabled
        # quarantine_backoff alone gates nothing (no threshold to trip).
        assert not InvocationPolicy(quarantine_backoff=4).enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            InvocationPolicy(backoff=-1)
        with pytest.raises(ValueError):
            InvocationPolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            InvocationPolicy(quarantine_backoff=0)
        with pytest.raises(ValueError):
            InvocationPolicy(max_failures_per_tick=0)


class TestHealthStateMachine:
    def test_up_suspect_up(self):
        tracker = HealthTracker(InvocationPolicy(failure_threshold=3))
        tracker.record_failure("s1", 1)
        assert tracker.state("s1") is HealthState.SUSPECT
        tracker.record_success("s1", 2)
        assert tracker.state("s1") is HealthState.UP
        assert tracker.health("s1").consecutive_failures == 0

    def test_threshold_quarantines(self):
        tracker = HealthTracker(InvocationPolicy(failure_threshold=2))
        tracker.record_failure("s1", 1)
        assert tracker.state("s1") is HealthState.SUSPECT
        tracker.record_failure("s1", 2)
        assert tracker.state("s1") is HealthState.QUARANTINED
        assert tracker.health("s1").quarantined_at == 2
        assert tracker.quarantined() == frozenset({"s1"})

    def test_release_is_probation(self):
        tracker = HealthTracker(
            InvocationPolicy(failure_threshold=2, quarantine_backoff=3)
        )
        tracker.record_failure("s1", 1)
        tracker.record_failure("s1", 2)
        assert not tracker.release_due("s1", 4)
        assert tracker.release_due("s1", 5)  # 2 + 3
        tracker.release("s1")
        assert tracker.state("s1") is HealthState.SUSPECT
        assert tracker.health("s1").consecutive_failures == 0
        # Still broken: one more failure than a fresh service to re-trip?
        # No — probation keeps the threshold, it only clears the count.
        tracker.record_failure("s1", 6)
        tracker.record_failure("s1", 7)
        assert tracker.state("s1") is HealthState.QUARANTINED

    def test_failed_probe_rearms_quarantine(self):
        tracker = HealthTracker(
            InvocationPolicy(failure_threshold=1, quarantine_backoff=5)
        )
        tracker.record_failure("s1", 1)
        assert tracker.health("s1").quarantined_at == 1
        tracker.record_failure("s1", 6)  # probe after backoff fails
        assert tracker.health("s1").quarantined_at == 6

    def test_success_lifts_quarantine(self):
        tracker = HealthTracker(InvocationPolicy(failure_threshold=1))
        tracker.record_failure("s1", 1)
        tracker.record_success("s1", 9)
        assert tracker.state("s1") is HealthState.UP
        assert tracker.health("s1").quarantined_at is None


class TestGates:
    def test_gates_ignore_same_instant_stamps(self):
        """Determinism at an instant (Section 3.2): a failure at τ must
        not change the outcome of other invocations at τ."""
        tracker = HealthTracker(
            InvocationPolicy(backoff=3, failure_threshold=1, quarantine_backoff=4)
        )
        tracker.record_failure("s1", 5)
        assert tracker.check("s1", 5) is None  # same instant: no gate
        assert tracker.check("s1", 6) == ("quarantined", 9)

    def test_backoff_window(self):
        tracker = HealthTracker(InvocationPolicy(backoff=3))
        tracker.record_failure("s1", 10)
        assert tracker.check("s1", 11) == ("backoff", 13)
        assert tracker.check("s1", 12) == ("backoff", 13)
        assert tracker.check("s1", 13) is None  # first real retry

    def test_backoff_cleared_by_success(self):
        tracker = HealthTracker(InvocationPolicy(backoff=5))
        tracker.record_failure("s1", 10)
        tracker.record_success("s1", 10)  # another query got through at 10
        assert tracker.check("s1", 11) is None

    def test_fast_failures_do_not_extend_backoff(self):
        tracker = HealthTracker(InvocationPolicy(backoff=2))
        tracker.record_failure("s1", 10)
        refused = tracker.check("s1", 11)
        assert refused == ("backoff", 12)
        tracker.record_fast_failure("s1")
        # The refusal did not move last_failure: instant 12 retries.
        assert tracker.check("s1", 12) is None
        assert tracker.health("s1").fast_failures == 1

    def test_per_tick_cap(self):
        tracker = HealthTracker(InvocationPolicy(max_failures_per_tick=2))
        tracker.record_failure("s1", 7)
        assert tracker.check("s1", 7) is None
        tracker.record_failure("s1", 7)
        assert tracker.check("s1", 7) == ("attempt-cap", 8)
        # A new instant resets the budget.
        assert tracker.check("s1", 8) is None

    def test_permissive_policy_never_gates(self):
        tracker = HealthTracker()
        for instant in range(1, 10):
            tracker.record_failure("s1", instant)
            assert tracker.check("s1", instant + 1) is None
        assert tracker.state("s1") is HealthState.SUSPECT


class TestRegistryIntegration:
    def test_gate_raises_service_unavailable(self):
        registry = ServiceRegistry(
            [broken_sensor()], policy=InvocationPolicy(backoff=3)
        )
        with pytest.raises(InvocationError):
            registry.invoke(GET_TEMPERATURE, "s1", {}, 1)
        with pytest.raises(ServiceUnavailableError) as info:
            registry.invoke(GET_TEMPERATURE, "s1", {}, 2)
        assert info.value.reason == "backoff"
        assert info.value.retry_at == 4
        # The fast-fail never reached the device.
        assert registry.invocation_count == 1

    def test_unknown_service_not_recorded_as_failure(self):
        registry = ServiceRegistry(policy=InvocationPolicy(failure_threshold=1))
        with pytest.raises(UnknownServiceError):
            registry.invoke(GET_TEMPERATURE, "ghost", {}, 1)
        assert "ghost" not in registry.health.known()

    def test_success_path_records_health(self):
        registry = ServiceRegistry(
            [good_sensor()], policy=InvocationPolicy(failure_threshold=2)
        )
        registry.invoke(GET_TEMPERATURE, "s1", {}, 3)
        record = registry.health.health("s1")
        assert record.total_successes == 1
        assert record.last_success == 3

    def test_permissive_success_path_stays_allocation_free(self):
        registry = ServiceRegistry([good_sensor()])
        registry.invoke(GET_TEMPERATURE, "s1", {}, 1)
        assert registry.health.known() == frozenset()

    def test_memo_vs_failing_service(self):
        """Pinned behaviour: failures are deliberately not memoized
        ("successes only", services.py) — N queries sharing one crashed
        device re-invoke it N times within a tick.  The bound, when one
        is wanted, is the policy: max_failures_per_tick caps the device
        attempts and backoff removes the following instants entirely
        (documented in DESIGN.md §8)."""
        registry = ServiceRegistry([broken_sensor()])
        registry.begin_instant_memo(1)
        for _ in range(3):
            with pytest.raises(InvocationError):
                registry.invoke(GET_TEMPERATURE, "s1", {}, 1)
        registry.end_instant_memo()
        assert registry.invocation_count == 3  # one per attempt, no memo
        assert registry.memo_hits == 0

        capped = ServiceRegistry(
            [broken_sensor()], policy=InvocationPolicy(max_failures_per_tick=1)
        )
        capped.begin_instant_memo(1)
        with pytest.raises(InvocationError):
            capped.invoke(GET_TEMPERATURE, "s1", {}, 1)
        for _ in range(3):
            with pytest.raises(ServiceUnavailableError):
                capped.invoke(GET_TEMPERATURE, "s1", {}, 1)
        capped.end_instant_memo()
        assert capped.invocation_count == 1  # the cap bounded the device cost
        assert capped.health.health("s1").fast_failures == 3

    def test_memo_still_serves_successes(self):
        registry = ServiceRegistry(
            [good_sensor()], policy=InvocationPolicy(failure_threshold=2)
        )
        registry.begin_instant_memo(1)
        first = registry.invoke(GET_TEMPERATURE, "s1", {}, 1)
        second = registry.invoke(GET_TEMPERATURE, "s1", {}, 1)
        registry.end_instant_memo()
        assert first == second
        assert registry.invocation_count == 1
        assert registry.memo_hits == 1
