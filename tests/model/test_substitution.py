"""Tests for the substitution relation (rules, resolution, ranking)."""

import pytest

from repro.devices.prototypes import GET_ENV_READING, GET_TEMPERATURE
from repro.errors import InvocationError, SchemaError
from repro.model.prototypes import Prototype
from repro.model.schema import RelationSchema
from repro.model.services import Service, ServiceRegistry
from repro.model.substitution import (
    CompositionStep,
    SubstitutionPolicy,
    SubstitutionRule,
)

# A two-step composition fixture: resolve an area to a sensor reference,
# then read that sensor — together they implement readArea.
READ_AREA = Prototype(
    "readArea",
    RelationSchema.of(area="STRING"),
    RelationSchema.of(temperature="REAL"),
)
LOOKUP = Prototype(
    "lookupSensor",
    RelationSchema.of(area="STRING"),
    RelationSchema.of(sensor="STRING"),
)
READ_BY_NAME = Prototype(
    "readByName",
    RelationSchema.of(sensor="STRING"),
    RelationSchema.of(temperature="REAL"),
)


def thermometer(value):
    def handler(inputs, instant):
        return [{"temperature": value}]

    return handler


def env_station(temperature, humidity):
    def handler(inputs, instant):
        return [{"temperature": temperature, "humidity": humidity}]

    return handler


class TestRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError):
            SubstitutionRule("better_than", "getTemperature", substitute="x")

    def test_equivalent_needs_substitute(self):
        with pytest.raises(SchemaError):
            SubstitutionRule("equivalent_to", "getTemperature")

    def test_specializes_needs_via(self):
        with pytest.raises(SchemaError):
            SubstitutionRule("specializes", "getTemperature", substitute="x")

    def test_composed_needs_steps(self):
        with pytest.raises(SchemaError):
            SubstitutionRule("composed_of", "getTemperature")

    def test_composed_rejects_substitute(self):
        with pytest.raises(SchemaError):
            SubstitutionRule(
                "composed_of",
                "getTemperature",
                substitute="x",
                steps=(CompositionStep("a", "b"),),
            )

    def test_constructors_and_describe(self):
        rule = SubstitutionRule.specializes(
            "getTemperature", "spare", "getEnvReading", reference="s1"
        )
        assert rule.describe() == (
            "getTemperature[s1] specializes spare/getEnvReading"
        )
        rule = SubstitutionRule.composed_of(
            "readArea", [("lookupSensor", "dir"), ("readByName", "hub")]
        )
        assert "lookupSensor@dir -> readByName@hub" in rule.describe()

    def test_policy_validates_chain(self):
        with pytest.raises(SchemaError):
            SubstitutionPolicy(max_chain=0)

    def test_declare_is_idempotent(self):
        registry = ServiceRegistry()
        rule = SubstitutionRule.equivalent_to("getTemperature", "b")
        registry.substitutions.declare(rule)
        registry.substitutions.declare(rule)
        assert registry.substitutions.rules == (rule,)


class TestResolution:
    def make_registry(self):
        registry = ServiceRegistry()
        registry.register(Service("a", {GET_TEMPERATURE: thermometer(20.0)}))
        registry.register(Service("b", {GET_TEMPERATURE: thermometer(21.0)}))
        registry.register(
            Service("spare", {GET_ENV_READING: env_station(19.0, 40.0)})
        )
        return registry

    def test_equivalent_resolves_to_same_prototype(self):
        registry = self.make_registry()
        subs = registry.substitutions
        subs.declare(SubstitutionRule.equivalent_to("getTemperature", "b"))
        plans = subs.resolve(registry, GET_TEMPERATURE, "a")
        assert len(plans) == 1
        assert plans[0].targets == ((GET_TEMPERATURE, "b"),)
        assert plans[0].projection is None

    def test_unregistered_substitute_skipped(self):
        registry = self.make_registry()
        subs = registry.substitutions
        subs.declare(SubstitutionRule.equivalent_to("getTemperature", "ghost"))
        assert subs.resolve(registry, GET_TEMPERATURE, "a") == []

    def test_self_substitution_skipped(self):
        registry = self.make_registry()
        subs = registry.substitutions
        subs.declare(SubstitutionRule.equivalent_to("getTemperature", "a"))
        assert subs.resolve(registry, GET_TEMPERATURE, "a") == []

    def test_specializes_projection_positions(self):
        registry = self.make_registry()
        subs = registry.substitutions
        subs.declare(
            SubstitutionRule.specializes(
                "getTemperature", "spare", "getEnvReading"
            )
        )
        (plan,) = subs.resolve(registry, GET_TEMPERATURE, "a")
        assert plan.targets == ((GET_ENV_READING, "spare"),)
        # getEnvReading outputs (temperature, humidity): position 0.
        assert plan.projection == (0,)

    def test_specializes_requires_output_superset(self):
        registry = ServiceRegistry()
        poor = Prototype(
            "poorReading", RelationSchema(()), RelationSchema.of(humidity="REAL")
        )
        registry.register(Service("a", {GET_TEMPERATURE: thermometer(20.0)}))
        registry.register(
            Service(
                "spare", {poor: lambda inputs, instant: [{"humidity": 1.0}]}
            )
        )
        subs = registry.substitutions
        subs.declare(
            SubstitutionRule.specializes("getTemperature", "spare", "poorReading")
        )
        assert subs.resolve(registry, GET_TEMPERATURE, "a") == []

    def test_composed_threading_and_coverage(self):
        registry = ServiceRegistry()
        registry.register(
            Service(
                "dir",
                {LOOKUP: lambda inputs, instant: [{"sensor": "s9"}]},
            )
        )
        registry.register(
            Service(
                "hub",
                {READ_BY_NAME: lambda inputs, instant: [{"temperature": 7.0}]},
            )
        )
        subs = registry.substitutions
        subs.declare(
            SubstitutionRule.composed_of(
                "readArea", [("lookupSensor", "dir"), ("readByName", "hub")]
            )
        )
        (plan,) = subs.resolve(registry, READ_AREA, "dead")
        assert [ref for _, ref in plan.targets] == ["dir", "hub"]
        # Reversing the steps breaks attribute threading (readByName needs
        # ``sensor``, which only lookupSensor provides).
        subs2 = ServiceRegistry().substitutions
        subs2.declare(
            SubstitutionRule.composed_of(
                "readArea", [("readByName", "hub"), ("lookupSensor", "dir")]
            )
        )
        assert subs2.resolve(registry, READ_AREA, "dead") == []

    def test_specific_rules_rank_before_wildcards(self):
        registry = self.make_registry()
        subs = registry.substitutions
        subs.declare(SubstitutionRule.equivalent_to("getTemperature", "b"))
        subs.declare(
            SubstitutionRule.equivalent_to("getTemperature", "b", reference="a")
        )
        rules = subs.rules_for("getTemperature", "a")
        assert rules[0].reference == "a"
        assert rules[1].reference is None


class TestRanking:
    def make_registry(self):
        registry = ServiceRegistry()
        for ref in ("alpha", "beta"):
            registry.register(Service(ref, {GET_TEMPERATURE: thermometer(20.0)}))
        registry.register(
            Service("spare", {GET_ENV_READING: env_station(19.0, 40.0)})
        )
        return registry

    def declare_all(self, subs):
        subs.declare(SubstitutionRule.equivalent_to("getTemperature", "beta"))
        subs.declare(SubstitutionRule.equivalent_to("getTemperature", "alpha"))
        subs.declare(
            SubstitutionRule.specializes(
                "getTemperature", "spare", "getEnvReading"
            )
        )

    def test_ties_break_on_reference_order(self):
        registry = self.make_registry()
        subs = registry.substitutions
        self.declare_all(subs)
        plans = subs.rank(registry, subs.resolve(registry, GET_TEMPERATURE, "dead"))
        # Same health, same kind: alphabetical reference order.
        assert [p.target_references for p in plans[:2]] == [
            ("alpha",),
            ("beta",),
        ]
        # specializes ranks after equivalent_to at equal health.
        assert plans[2].rule.kind == "specializes"

    def test_failing_target_ranks_last_and_quarantined_excluded(self):
        registry = self.make_registry()
        subs = registry.substitutions
        self.declare_all(subs)
        # Alpha observed failing (no policy: records, never quarantines).
        health = registry.health
        for instant in range(4):
            health.record_failure("alpha", instant)
        plans = subs.rank(registry, subs.resolve(registry, GET_TEMPERATURE, "dead"))
        assert plans[0].target_references == ("beta",)
        assert plans[-1].target_references != ("beta",)

    def test_rank_drops_unregistered_target(self):
        registry = self.make_registry()
        subs = registry.substitutions
        self.declare_all(subs)
        plans = subs.resolve(registry, GET_TEMPERATURE, "dead")
        registry.unregister("alpha")
        ranked = subs.rank(registry, plans)
        assert all(p.target_references != ("alpha",) for p in ranked)


class TestRoutingGuard:
    def test_routes_through_detects_cycle(self):
        registry = ServiceRegistry()
        registry.register(Service("a", {GET_TEMPERATURE: thermometer(1.0)}))
        registry.register(Service("b", {GET_TEMPERATURE: thermometer(2.0)}))
        subs = registry.substitutions
        subs.declare(SubstitutionRule.equivalent_to("getTemperature", "b"))
        (plan_ab,) = subs.resolve(registry, GET_TEMPERATURE, "a")
        assert subs.routes_through(plan_ab, "b")
        # Install a -> b; a plan sending b's traffic to a now loops.
        subs.install(plan_ab, 1, "quarantine")
        rule_ba = SubstitutionRule.equivalent_to("getTemperature", "a")
        subs.declare(rule_ba)
        (plan_ba,) = subs.resolve(registry, GET_TEMPERATURE, "b")
        assert subs.routes_through(plan_ba, "b")


class TestEpochProtocol:
    def test_install_and_drop_bump_epoch_and_stamp(self):
        registry = ServiceRegistry()
        registry.register(Service("a", {GET_TEMPERATURE: thermometer(1.0)}))
        registry.register(Service("b", {GET_TEMPERATURE: thermometer(2.0)}))
        subs = registry.substitutions
        subs.declare(SubstitutionRule.equivalent_to("getTemperature", "b"))
        (plan,) = subs.resolve(registry, GET_TEMPERATURE, "a")
        assert subs.epoch == 0
        record = subs.install(plan, 5, "quarantine")
        assert subs.epoch == 1 and record.epoch == 1
        assert subs.rebound_since("getTemperature", 0) == {"a"}
        assert subs.rebound_since("getTemperature", 1) == frozenset()
        dropped = subs.drop("getTemperature", "a", 9, "substitute-failed")
        assert dropped is not None and subs.epoch == 2
        assert subs.rebound_since("getTemperature", 1) == {"a"}
        assert subs.drop("getTemperature", "a", 9, "again") is None
        assert [r.describe() for r in subs.history] == [
            "@5 getTemperature[a] equivalent_to b (quarantine)",
            "@9 getTemperature[a] released (substitute-failed)",
        ]


class TestBindingExecution:
    def test_bound_invocation_projects_specialized_results(self):
        registry = ServiceRegistry()
        registry.register(Service("a", {GET_TEMPERATURE: thermometer(20.0)}))
        registry.register(
            Service("spare", {GET_ENV_READING: env_station(19.5, 40.0)})
        )
        subs = registry.substitutions
        subs.declare(
            SubstitutionRule.specializes(
                "getTemperature", "spare", "getEnvReading", reference="a"
            )
        )
        (plan,) = subs.resolve(registry, GET_TEMPERATURE, "a")
        subs.install(plan, 1, "quarantine")
        # Invocations of a now return the spare's projected reading; the
        # original handler is never consulted.
        assert registry.invoke(GET_TEMPERATURE, "a", {}, 2) == [(19.5,)]

    def test_composed_binding_threads_inputs(self):
        registry = ServiceRegistry()
        registry.register(
            Service("area-reader", {READ_AREA: lambda i, t: [{"temperature": 0.0}]})
        )
        registry.register(
            Service(
                "dir",
                {LOOKUP: lambda inputs, instant: [{"sensor": inputs["area"]}]},
            )
        )
        registry.register(
            Service(
                "hub",
                {
                    READ_BY_NAME: lambda inputs, instant: [
                        {"temperature": float(len(inputs["sensor"]))}
                    ]
                },
            )
        )
        subs = registry.substitutions
        subs.declare(
            SubstitutionRule.composed_of(
                "readArea",
                [("lookupSensor", "dir"), ("readByName", "hub")],
                reference="area-reader",
            )
        )
        (plan,) = subs.resolve(registry, READ_AREA, "area-reader")
        subs.install(plan, 1, "quarantine")
        assert registry.invoke(READ_AREA, "area-reader", {"area": "roof"}, 2) == [
            (4.0,)
        ]

    def test_chain_depth_guard(self):
        registry = ServiceRegistry(
            substitution=SubstitutionPolicy(max_chain=1)
        )
        for ref in ("a", "b", "c"):
            registry.register(Service(ref, {GET_TEMPERATURE: thermometer(1.0)}))
        subs = registry.substitutions
        subs.declare(
            SubstitutionRule.equivalent_to("getTemperature", "b", reference="a")
        )
        subs.declare(
            SubstitutionRule.equivalent_to("getTemperature", "c", reference="b")
        )
        (plan_ab,) = subs.resolve(registry, GET_TEMPERATURE, "a")
        subs.install(plan_ab, 1, "quarantine")
        (plan_bc,) = subs.resolve(registry, GET_TEMPERATURE, "b")
        subs.install(plan_bc, 1, "quarantine")
        # a -> b -> c needs depth 2; max_chain=1 refuses.
        with pytest.raises(InvocationError):
            registry.invoke(GET_TEMPERATURE, "a", {}, 2)
