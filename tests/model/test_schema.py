"""Tests for plain relation schemas and attributes (Section 2.3.1)."""

import pytest

from repro.errors import (
    DuplicateAttributeError,
    SchemaError,
    UnknownAttributeError,
)
from repro.model.attributes import Attribute
from repro.model.schema import RelationSchema
from repro.model.types import DataType


class TestAttribute:
    def test_construction(self):
        attr = Attribute("temperature", DataType.REAL)
        assert attr.name == "temperature"
        assert attr.dtype is DataType.REAL

    def test_invalid_name(self):
        with pytest.raises(SchemaError):
            Attribute("2bad", DataType.STRING)

    def test_empty_name(self):
        with pytest.raises(SchemaError):
            Attribute("", DataType.STRING)

    def test_name_with_space(self):
        with pytest.raises(SchemaError):
            Attribute("a b", DataType.STRING)

    def test_service_reference_flag(self):
        assert Attribute("messenger", DataType.SERVICE).is_service_reference
        assert not Attribute("name", DataType.STRING).is_service_reference

    def test_renamed_preserves_type(self):
        attr = Attribute("a", DataType.INTEGER).renamed("b")
        assert attr.name == "b"
        assert attr.dtype is DataType.INTEGER

    def test_str(self):
        assert str(Attribute("sent", DataType.BOOLEAN)) == "sent BOOLEAN"

    def test_equality_and_hash(self):
        assert Attribute("a", DataType.REAL) == Attribute("a", DataType.REAL)
        assert hash(Attribute("a", DataType.REAL)) == hash(Attribute("a", DataType.REAL))
        assert Attribute("a", DataType.REAL) != Attribute("a", DataType.INTEGER)


class TestRelationSchema:
    def test_of_builder(self):
        schema = RelationSchema.of(address="STRING", text="STRING")
        assert schema.names == ("address", "text")
        assert schema.arity == 2

    def test_order_preserved(self):
        schema = RelationSchema.of(z="INTEGER", a="REAL", m="STRING")
        assert schema.names == ("z", "a", "m")

    def test_duplicate_attribute(self):
        with pytest.raises(DuplicateAttributeError):
            RelationSchema(
                [Attribute("a", DataType.REAL), Attribute("a", DataType.REAL)]
            )

    def test_empty_schema_allowed(self):
        """getTemperature has an empty input schema."""
        schema = RelationSchema(())
        assert schema.arity == 0
        assert schema.names == ()

    def test_position_and_attribute(self):
        schema = RelationSchema.of(a="STRING", b="REAL")
        assert schema.position("b") == 1
        assert schema.attribute("a").dtype is DataType.STRING

    def test_unknown_attribute(self):
        schema = RelationSchema.of(a="STRING")
        with pytest.raises(UnknownAttributeError):
            schema.position("nope")
        with pytest.raises(UnknownAttributeError):
            schema.attribute("nope")

    def test_contains_and_iter(self):
        schema = RelationSchema.of(a="STRING", b="REAL")
        assert "a" in schema
        assert "c" not in schema
        assert [x.name for x in schema] == ["a", "b"]
        assert len(schema) == 2

    def test_tuple_from_mapping_roundtrip(self):
        schema = RelationSchema.of(quality="INTEGER", delay="REAL")
        values = schema.tuple_from_mapping({"quality": 5, "delay": 2})
        assert values == (5, 2.0)
        assert isinstance(values[1], float)  # coerced to REAL
        assert schema.mapping_from_tuple(values) == {"quality": 5, "delay": 2.0}

    def test_tuple_from_mapping_missing(self):
        schema = RelationSchema.of(quality="INTEGER", delay="REAL")
        with pytest.raises(SchemaError, match="missing value"):
            schema.tuple_from_mapping({"quality": 5})

    def test_tuple_from_mapping_extra(self):
        schema = RelationSchema.of(quality="INTEGER")
        with pytest.raises(UnknownAttributeError):
            schema.tuple_from_mapping({"quality": 5, "bogus": 1})

    def test_mapping_from_tuple_wrong_arity(self):
        schema = RelationSchema.of(quality="INTEGER")
        with pytest.raises(SchemaError, match="does not fit"):
            schema.mapping_from_tuple((1, 2))

    def test_structural_equality(self):
        a = RelationSchema.of(x="STRING", y="REAL")
        b = RelationSchema.of(x="STRING", y="REAL")
        c = RelationSchema.of(y="REAL", x="STRING")
        assert a == b
        assert hash(a) == hash(b)
        assert a != c  # order matters

    def test_name_set(self):
        schema = RelationSchema.of(x="STRING", y="REAL")
        assert schema.name_set == frozenset({"x", "y"})
