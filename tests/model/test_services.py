"""Tests for services and the invocation function (Definition 1)."""

import pytest

from repro.devices.prototypes import GET_TEMPERATURE, SEND_MESSAGE
from repro.errors import (
    InvocationError,
    PrototypeNotImplementedError,
    SchemaError,
    UnknownServiceError,
)
from repro.model.services import Service, ServiceRegistry


def ok_sender(inputs, instant):
    return [{"sent": True}]


def thermometer(value):
    def handler(inputs, instant):
        return [{"temperature": value}]

    return handler


class TestService:
    def test_prototypes_set(self):
        service = Service("email", {SEND_MESSAGE: ok_sender})
        assert service.prototypes == frozenset({SEND_MESSAGE})
        assert service.prototype_names == frozenset({"sendMessage"})

    def test_implements(self):
        service = Service("email", {SEND_MESSAGE: ok_sender})
        assert service.implements(SEND_MESSAGE)
        assert not service.implements(GET_TEMPERATURE)

    def test_handler_lookup_missing(self):
        service = Service("email", {SEND_MESSAGE: ok_sender})
        with pytest.raises(PrototypeNotImplementedError):
            service.handler(GET_TEMPERATURE)

    def test_invalid_reference(self):
        with pytest.raises(SchemaError):
            Service("", {SEND_MESSAGE: ok_sender})

    def test_properties(self):
        service = Service(
            "sensor01", {GET_TEMPERATURE: thermometer(20.0)},
            properties={"location": "corridor"},
        )
        assert service.properties["location"] == "corridor"


class TestRegistry:
    def test_register_and_get(self):
        registry = ServiceRegistry()
        service = Service("email", {SEND_MESSAGE: ok_sender})
        registry.register(service)
        assert registry.get("email") is service
        assert "email" in registry
        assert len(registry) == 1

    def test_get_unknown(self):
        with pytest.raises(UnknownServiceError):
            ServiceRegistry().get("ghost")

    def test_unregister_is_idempotent(self):
        registry = ServiceRegistry()
        registry.register(Service("email", {SEND_MESSAGE: ok_sender}))
        registry.unregister("email")
        registry.unregister("email")  # no error: dynamic envs double-reap
        assert "email" not in registry

    def test_providers_sorted(self):
        registry = ServiceRegistry()
        for ref in ("sensorB", "sensorA", "sensorC"):
            registry.register(Service(ref, {GET_TEMPERATURE: thermometer(1.0)}))
        registry.register(Service("mail", {SEND_MESSAGE: ok_sender}))
        providers = registry.providers(GET_TEMPERATURE)
        assert [s.reference for s in providers] == ["sensorA", "sensorB", "sensorC"]

    def test_replace_service(self):
        registry = ServiceRegistry()
        registry.register(Service("s", {GET_TEMPERATURE: thermometer(1.0)}))
        registry.register(Service("s", {GET_TEMPERATURE: thermometer(2.0)}))
        result = registry.invoke(GET_TEMPERATURE, "s", {}, 0)
        assert result == [(2.0,)]


class TestInvocation:
    """invoke_psi(s, t) — Definition 1."""

    def test_basic_invocation(self):
        registry = ServiceRegistry([Service("email", {SEND_MESSAGE: ok_sender})])
        result = registry.invoke(
            SEND_MESSAGE, "email", {"address": "a@b.c", "text": "hi"}, 0
        )
        assert result == [(True,)]

    def test_multi_tuple_result(self):
        """Invocation results are relations: 0, 1 or several tuples."""

        def multi(inputs, instant):
            return [{"temperature": 1.0}, {"temperature": 2.0}]

        registry = ServiceRegistry([Service("s", {GET_TEMPERATURE: multi})])
        assert sorted(registry.invoke(GET_TEMPERATURE, "s", {}, 0)) == [
            (1.0,),
            (2.0,),
        ]

    def test_empty_result(self):
        registry = ServiceRegistry(
            [Service("s", {GET_TEMPERATURE: lambda i, t: []})]
        )
        assert registry.invoke(GET_TEMPERATURE, "s", {}, 0) == []

    def test_unknown_service(self):
        with pytest.raises(UnknownServiceError):
            ServiceRegistry().invoke(GET_TEMPERATURE, "ghost", {}, 0)

    def test_prototype_not_implemented(self):
        registry = ServiceRegistry([Service("email", {SEND_MESSAGE: ok_sender})])
        with pytest.raises(PrototypeNotImplementedError):
            registry.invoke(GET_TEMPERATURE, "email", {}, 0)

    def test_input_mismatch(self):
        registry = ServiceRegistry([Service("email", {SEND_MESSAGE: ok_sender})])
        with pytest.raises(InvocationError, match="do not match"):
            registry.invoke(SEND_MESSAGE, "email", {"address": "a@b.c"}, 0)

    def test_extra_input_rejected(self):
        registry = ServiceRegistry([Service("email", {SEND_MESSAGE: ok_sender})])
        with pytest.raises(InvocationError):
            registry.invoke(
                SEND_MESSAGE,
                "email",
                {"address": "a", "text": "b", "extra": 1},
                0,
            )

    def test_handler_exception_wrapped(self):
        def broken(inputs, instant):
            raise RuntimeError("device on fire")

        registry = ServiceRegistry([Service("s", {GET_TEMPERATURE: broken})])
        with pytest.raises(InvocationError, match="device on fire"):
            registry.invoke(GET_TEMPERATURE, "s", {}, 0)

    def test_bad_output_schema_rejected(self):
        def bad(inputs, instant):
            return [{"wrong_column": 1.0}]

        registry = ServiceRegistry([Service("s", {GET_TEMPERATURE: bad})])
        with pytest.raises(InvocationError, match="invalid output tuple"):
            registry.invoke(GET_TEMPERATURE, "s", {}, 0)

    def test_output_type_coerced(self):
        registry = ServiceRegistry(
            [Service("s", {GET_TEMPERATURE: lambda i, t: [{"temperature": 21}]})]
        )
        result = registry.invoke(GET_TEMPERATURE, "s", {}, 0)
        assert result == [(21.0,)]
        assert isinstance(result[0][0], float)

    def test_invocation_counter(self):
        registry = ServiceRegistry([Service("email", {SEND_MESSAGE: ok_sender})])
        assert registry.invocation_count == 0
        registry.invoke(SEND_MESSAGE, "email", {"address": "a", "text": "b"}, 0)
        registry.invoke(SEND_MESSAGE, "email", {"address": "a", "text": "b"}, 0)
        assert registry.invocation_count == 2
        registry.reset_invocation_count()
        assert registry.invocation_count == 0
