"""Tests for X-Relations (Definition 3) and set operators (3.1.1)."""

import pytest

from repro.devices.scenario import contacts_schema, surveillance_schema
from repro.errors import InvalidOperatorError, SchemaError
from repro.model.relation import XRelation


def contacts():
    return XRelation.from_mappings(
        contacts_schema(),
        [
            {"name": "Nicolas", "address": "nicolas@elysee.fr", "messenger": "email"},
            {"name": "Carla", "address": "carla@elysee.fr", "messenger": "email"},
        ],
    )


class TestConstruction:
    def test_tuples_are_sets(self):
        schema = surveillance_schema()
        rel = XRelation(
            schema,
            [("A", "office", 28.0), ("A", "office", 28.0), ("B", "roof", 25.0)],
        )
        assert len(rel) == 2

    def test_tuples_validated(self):
        with pytest.raises(SchemaError):
            XRelation(surveillance_schema(), [("A", "office")])  # wrong arity

    def test_int_coerced_to_real(self):
        rel = XRelation(surveillance_schema(), [("A", "office", 28)])
        (t,) = rel
        assert isinstance(t[2], float)

    def test_from_mappings_ignores_virtuals_layout(self):
        rel = contacts()
        (first,) = [t for t in rel if t[0] == "Carla"]
        assert first == ("Carla", "carla@elysee.fr", "email")  # 3 real attrs

    def test_empty_relation(self):
        rel = XRelation(contacts_schema())
        assert len(rel) == 0
        assert rel.to_mappings() == []


class TestAccess:
    def test_column(self):
        rel = contacts()
        assert rel.column("name") == ["Carla", "Nicolas"]

    def test_to_mappings_deterministic(self):
        rel = contacts()
        assert rel.to_mappings() == rel.to_mappings()
        names = [m["name"] for m in rel.to_mappings()]
        assert names == sorted(names)

    def test_contains(self):
        rel = contacts()
        assert ("Carla", "carla@elysee.fr", "email") in rel


class TestSetOperators:
    def test_union(self):
        a = contacts()
        b = XRelation.from_mappings(
            contacts_schema(),
            [{"name": "Francois", "address": "francois@im.gouv.fr", "messenger": "jabber"}],
        )
        assert len(a.union(b)) == 3
        assert len(a | b) == 3

    def test_intersection(self):
        a = contacts()
        b = XRelation.from_mappings(
            contacts_schema(),
            [{"name": "Carla", "address": "carla@elysee.fr", "messenger": "email"}],
        )
        assert (a & b).column("name") == ["Carla"]

    def test_difference(self):
        a = contacts()
        b = XRelation.from_mappings(
            contacts_schema(),
            [{"name": "Carla", "address": "carla@elysee.fr", "messenger": "email"}],
        )
        assert (a - b).column("name") == ["Nicolas"]

    def test_incompatible_schemas_rejected(self):
        a = contacts()
        b = XRelation(surveillance_schema(), [("A", "office", 28.0)])
        with pytest.raises(InvalidOperatorError):
            a.union(b)

    def test_compatible_across_names(self):
        """Set ops require schema compatibility, not identical symbols."""
        a = contacts()
        b = XRelation.from_mappings(
            contacts_schema().with_name("other"),
            [{"name": "X", "address": "x@y.z", "messenger": "email"}],
        )
        assert len(a | b) == 3


class TestRendering:
    def test_virtual_columns_render_star(self):
        table = contacts().to_table()
        lines = table.splitlines()
        assert "text" in lines[1] and "sent" in lines[1]
        data_lines = [l for l in lines if "Carla" in l]
        assert data_lines and "| *" in data_lines[0]

    def test_blob_rendering(self):
        from repro.devices.scenario import cameras_schema

        rel = XRelation.from_mappings(
            cameras_schema().realize(["photo"]),
            [{"camera": "c1", "area": "office", "photo": b"12345"}],
        )
        assert "<blob 5B>" in rel.to_table()

    def test_equality(self):
        assert contacts() == contacts()
        assert hash(contacts()) == hash(contacts())
