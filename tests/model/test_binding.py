"""Tests for binding patterns (Definition 2)."""

import pytest

from repro.devices.prototypes import CHECK_PHOTO, SEND_MESSAGE, TAKE_PHOTO
from repro.errors import BindingPatternError
from repro.model.binding import BindingPattern


class TestConstruction:
    def test_basic(self):
        bp = BindingPattern(SEND_MESSAGE, "messenger")
        assert bp.prototype is SEND_MESSAGE
        assert bp.service_attribute == "messenger"

    def test_active_follows_prototype(self):
        assert BindingPattern(SEND_MESSAGE, "messenger").active
        assert not BindingPattern(CHECK_PHOTO, "camera").active

    def test_service_attribute_cannot_be_input(self):
        with pytest.raises(BindingPatternError):
            BindingPattern(SEND_MESSAGE, "address")

    def test_service_attribute_cannot_be_output(self):
        with pytest.raises(BindingPatternError):
            BindingPattern(SEND_MESSAGE, "sent")

    def test_empty_service_attribute(self):
        with pytest.raises(BindingPatternError):
            BindingPattern(SEND_MESSAGE, "")


class TestAccessors:
    def test_input_output_names(self):
        bp = BindingPattern(TAKE_PHOTO, "camera")
        assert bp.input_names == {"area", "quality"}
        assert bp.output_names == {"photo"}

    def test_referenced_names(self):
        bp = BindingPattern(TAKE_PHOTO, "camera")
        assert bp.referenced_names == {"area", "quality", "photo", "camera"}

    def test_describe_matches_table2_style(self):
        bp = BindingPattern(SEND_MESSAGE, "messenger")
        assert bp.describe() == "sendMessage[messenger] ( address, text ) : ( sent )"


class TestRenaming:
    def test_rename_service_attribute(self):
        bp = BindingPattern(SEND_MESSAGE, "messenger")
        renamed = bp.renamed("messenger", "channel")
        assert renamed.service_attribute == "channel"
        assert renamed.prototype is SEND_MESSAGE

    def test_rename_other_attribute_is_noop(self):
        bp = BindingPattern(SEND_MESSAGE, "messenger")
        assert bp.renamed("address", "addr") is bp

    def test_equality(self):
        a = BindingPattern(SEND_MESSAGE, "messenger")
        b = BindingPattern(SEND_MESSAGE, "messenger")
        assert a == b
        assert hash(a) == hash(b)
        assert a != BindingPattern(SEND_MESSAGE, "other")
