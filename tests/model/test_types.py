"""Tests for attribute data types and value validation."""

import pytest

from repro.errors import TypingError
from repro.model.types import DataType, coerce_value, validate_value


class TestFromName:
    def test_lowercase(self):
        assert DataType.from_name("string") is DataType.STRING

    def test_uppercase(self):
        assert DataType.from_name("REAL") is DataType.REAL

    def test_mixed_case(self):
        assert DataType.from_name("Boolean") is DataType.BOOLEAN

    def test_unknown_raises(self):
        with pytest.raises(TypingError, match="unknown data type"):
            DataType.from_name("varchar")

    def test_all_ddl_types_resolve(self):
        for name in ("STRING", "INTEGER", "REAL", "BOOLEAN", "BLOB", "SERVICE", "TIMESTAMP"):
            assert DataType.from_name(name).value == name


class TestValidate:
    @pytest.mark.parametrize(
        "value,dtype",
        [
            ("hello", DataType.STRING),
            (42, DataType.INTEGER),
            (3.14, DataType.REAL),
            (7, DataType.REAL),  # ints live in REAL's domain
            (True, DataType.BOOLEAN),
            (b"blob", DataType.BLOB),
            ("sensor01", DataType.SERVICE),
            (12, DataType.TIMESTAMP),
        ],
    )
    def test_valid(self, value, dtype):
        assert validate_value(value, dtype)

    @pytest.mark.parametrize(
        "value,dtype",
        [
            (42, DataType.STRING),
            ("x", DataType.INTEGER),
            (None, DataType.REAL),
            (1, DataType.BOOLEAN),
            ("not-bytes", DataType.BLOB),
            (3.5, DataType.TIMESTAMP),
        ],
    )
    def test_invalid(self, value, dtype):
        assert not validate_value(value, dtype)

    def test_bool_is_not_integer(self):
        """Python's bool subclasses int; the model keeps them apart."""
        assert not validate_value(True, DataType.INTEGER)
        assert not validate_value(False, DataType.REAL)


class TestCoerce:
    def test_int_to_real(self):
        coerced = coerce_value(5, DataType.REAL)
        assert coerced == 5.0
        assert isinstance(coerced, float)

    def test_valid_passthrough(self):
        assert coerce_value("x", DataType.STRING) == "x"

    def test_bool_not_coerced_to_real(self):
        with pytest.raises(TypingError):
            coerce_value(True, DataType.REAL)

    def test_invalid_raises(self):
        with pytest.raises(TypingError, match="not a valid INTEGER"):
            coerce_value("12", DataType.INTEGER)
