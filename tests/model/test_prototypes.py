"""Tests for prototypes (Sections 2.1 and 2.3.1)."""

import pytest

from repro.devices.prototypes import (
    CHECK_PHOTO,
    GET_TEMPERATURE,
    SEND_MESSAGE,
    TAKE_PHOTO,
)
from repro.errors import SchemaError
from repro.model.prototypes import Prototype
from repro.model.schema import RelationSchema


class TestInvariants:
    def test_output_must_be_nonempty(self):
        """schema(Output_psi) != {} (Section 2.3.1)."""
        with pytest.raises(SchemaError, match="output schema must be non-empty"):
            Prototype("p", RelationSchema.of(a="STRING"), RelationSchema(()))

    def test_input_output_disjoint(self):
        """schema(Input) ∩ schema(Output) = {} (Section 2.3.1)."""
        with pytest.raises(SchemaError, match="overlap"):
            Prototype(
                "p",
                RelationSchema.of(a="STRING"),
                RelationSchema.of(a="STRING"),
            )

    def test_empty_input_is_fine(self):
        proto = Prototype("p", RelationSchema(()), RelationSchema.of(x="REAL"))
        assert proto.input_names == frozenset()

    def test_bad_name(self):
        with pytest.raises(SchemaError, match="invalid prototype name"):
            Prototype("", RelationSchema(()), RelationSchema.of(x="REAL"))


class TestTable1Prototypes:
    """The four prototypes of Table 1, exactly as declared."""

    def test_send_message(self):
        assert SEND_MESSAGE.active
        assert SEND_MESSAGE.input_names == {"address", "text"}
        assert SEND_MESSAGE.output_names == {"sent"}

    def test_check_photo(self):
        assert CHECK_PHOTO.is_passive
        assert CHECK_PHOTO.input_names == {"area"}
        assert CHECK_PHOTO.output_names == {"quality", "delay"}

    def test_take_photo(self):
        assert TAKE_PHOTO.is_passive
        assert TAKE_PHOTO.input_names == {"area", "quality"}
        assert TAKE_PHOTO.output_names == {"photo"}

    def test_get_temperature(self):
        assert GET_TEMPERATURE.is_passive
        assert GET_TEMPERATURE.input_names == frozenset()
        assert GET_TEMPERATURE.output_names == {"temperature"}

    def test_signature_rendering(self):
        assert SEND_MESSAGE.signature() == (
            "PROTOTYPE sendMessage( address STRING, text STRING ) "
            ": ( sent BOOLEAN ) ACTIVE"
        )
        assert GET_TEMPERATURE.signature() == (
            "PROTOTYPE getTemperature(  ) : ( temperature REAL )"
        )

    def test_equality(self):
        clone = Prototype(
            "sendMessage",
            RelationSchema.of(address="STRING", text="STRING"),
            RelationSchema.of(sent="BOOLEAN"),
            active=True,
        )
        assert clone == SEND_MESSAGE
        passive_twin = Prototype(
            "sendMessage",
            RelationSchema.of(address="STRING", text="STRING"),
            RelationSchema.of(sent="BOOLEAN"),
            active=False,
        )
        assert passive_twin != SEND_MESSAGE
