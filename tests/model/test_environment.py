"""Tests for relational pervasive environments (catalog + URSA)."""

import pytest

from repro.devices.prototypes import GET_TEMPERATURE, SEND_MESSAGE
from repro.devices.scenario import contacts_schema, temperatures_schema
from repro.continuous.xdrelation import XDRelation
from repro.errors import (
    EnvironmentError_,
    UnknownPrototypeError,
    UnknownRelationError,
)
from repro.model.attributes import Attribute
from repro.model.environment import PervasiveEnvironment
from repro.model.prototypes import Prototype
from repro.model.relation import XRelation
from repro.model.schema import RelationSchema
from repro.model.services import Service
from repro.model.types import DataType
from repro.model.xschema import ExtendedRelationSchema


class TestPrototypes:
    def test_declare_and_lookup(self):
        env = PervasiveEnvironment()
        env.declare_prototype(SEND_MESSAGE)
        assert env.prototype("sendMessage") is SEND_MESSAGE

    def test_redeclare_identical_ok(self):
        env = PervasiveEnvironment()
        env.declare_prototype(SEND_MESSAGE)
        env.declare_prototype(SEND_MESSAGE)
        assert len(env.prototypes) == 1

    def test_redeclare_different_rejected(self):
        env = PervasiveEnvironment()
        env.declare_prototype(SEND_MESSAGE)
        other = Prototype(
            "sendMessage",
            RelationSchema.of(address="STRING", text="STRING"),
            RelationSchema.of(sent="BOOLEAN"),
            active=False,  # active flag differs
        )
        with pytest.raises(EnvironmentError_, match="declared differently"):
            env.declare_prototype(other)

    def test_unknown_prototype(self):
        with pytest.raises(UnknownPrototypeError):
            PervasiveEnvironment().prototype("ghost")


class TestServices:
    def test_register_requires_declared_prototypes(self):
        env = PervasiveEnvironment()
        service = Service("email", {SEND_MESSAGE: lambda i, t: [{"sent": True}]})
        with pytest.raises(UnknownPrototypeError):
            env.register_service(service)
        env.declare_prototype(SEND_MESSAGE)
        env.register_service(service)
        assert "email" in env.registry

    def test_unregister(self):
        env = PervasiveEnvironment()
        env.declare_prototype(SEND_MESSAGE)
        env.register_service(
            Service("email", {SEND_MESSAGE: lambda i, t: [{"sent": True}]})
        )
        env.unregister_service("email")
        assert "email" not in env.registry


class TestRelations:
    def test_add_and_get(self):
        env = PervasiveEnvironment()
        rel = XRelation(contacts_schema())
        env.add_relation(rel)
        assert env.relation("contacts") is rel
        assert "contacts" in env
        assert env.relation_names == ("contacts",)

    def test_add_declares_binding_pattern_prototypes(self):
        env = PervasiveEnvironment()
        env.add_relation(XRelation(contacts_schema()))
        assert env.prototype("sendMessage") == SEND_MESSAGE

    def test_anonymous_needs_explicit_name(self):
        env = PervasiveEnvironment()
        schema = contacts_schema().with_name(None)
        with pytest.raises(EnvironmentError_, match="needs a name"):
            env.add_relation(XRelation(schema))
        env.add_relation(XRelation(schema), name="people")
        assert "people" in env

    def test_unknown_relation(self):
        with pytest.raises(UnknownRelationError):
            PervasiveEnvironment().relation("ghost")

    def test_remove(self):
        env = PervasiveEnvironment()
        env.add_relation(XRelation(contacts_schema()))
        env.remove_relation("contacts")
        assert "contacts" not in env
        with pytest.raises(UnknownRelationError):
            env.remove_relation("contacts")

    def test_not_a_relation_rejected(self):
        with pytest.raises(EnvironmentError_):
            PervasiveEnvironment().add_relation(object(), name="x")


class TestInstantaneous:
    def test_static_relation_is_time_invariant(self):
        env = PervasiveEnvironment()
        rel = XRelation.from_mappings(
            contacts_schema(),
            [{"name": "A", "address": "a@b", "messenger": "email"}],
        )
        env.add_relation(rel)
        assert env.instantaneous("contacts", 0) == rel
        assert env.instantaneous("contacts", 99) == rel

    def test_dynamic_relation_resolves_per_instant(self):
        env = PervasiveEnvironment()
        xd = XDRelation(temperatures_schema(), infinite=True)
        env.add_relation(xd)
        xd.insert([("s1", "office", 20.0, 1)], instant=1)
        xd.insert([("s1", "office", 21.0, 2)], instant=2)
        assert len(env.instantaneous("temperatures", 1)) == 1
        assert len(env.instantaneous("temperatures", 2)) == 2


class TestURSA:
    def test_conflicting_types_across_relations(self):
        env = PervasiveEnvironment()
        env.add_relation(
            XRelation(
                ExtendedRelationSchema("r1", [Attribute("x", DataType.REAL)])
            )
        )
        with pytest.raises(EnvironmentError_, match="URSA"):
            env.add_relation(
                XRelation(
                    ExtendedRelationSchema("r2", [Attribute("x", DataType.STRING)])
                )
            )

    def test_conflict_with_prototype_schema(self):
        env = PervasiveEnvironment()
        env.declare_prototype(GET_TEMPERATURE)  # temperature REAL
        with pytest.raises(EnvironmentError_, match="URSA"):
            env.add_relation(
                XRelation(
                    ExtendedRelationSchema(
                        "r", [Attribute("temperature", DataType.STRING)]
                    )
                )
            )

    def test_describe_lists_everything(self, paper):
        text = paper.environment.describe()
        assert "PROTOTYPE sendMessage" in text
        assert "SERVICE camera01 IMPLEMENTS checkPhoto, takePhoto;" in text
        assert "EXTENDED RELATION contacts" in text
