"""Tests for extended relation schemas (Definitions 2–4 and the schema
derivations of Table 3)."""

import pytest

from repro.devices.prototypes import CHECK_PHOTO, SEND_MESSAGE, TAKE_PHOTO
from repro.devices.scenario import cameras_schema, contacts_schema
from repro.errors import (
    BindingPatternError,
    DuplicateAttributeError,
    SchemaError,
    UnknownAttributeError,
    VirtualAttributeError,
)
from repro.model.attributes import Attribute
from repro.model.binding import BindingPattern
from repro.model.types import DataType
from repro.model.xschema import ExtendedRelationSchema


def simple_schema(**kwargs):
    defaults = dict(
        name="r",
        attributes=[
            Attribute("a", DataType.STRING),
            Attribute("v", DataType.REAL),
            Attribute("b", DataType.INTEGER),
        ],
        virtual={"v"},
    )
    defaults.update(kwargs)
    return ExtendedRelationSchema(**defaults)


class TestConstruction:
    def test_partition(self):
        schema = contacts_schema()
        assert schema.real_names == {"name", "address", "messenger"}
        assert schema.virtual_names == {"text", "sent"}
        assert schema.name_set == {"name", "address", "text", "messenger", "sent"}

    def test_arity_counts_virtual(self):
        assert contacts_schema().arity == 5

    def test_duplicate_attribute(self):
        with pytest.raises(DuplicateAttributeError):
            ExtendedRelationSchema(
                "r",
                [Attribute("a", DataType.STRING), Attribute("a", DataType.REAL)],
            )

    def test_virtual_must_exist(self):
        with pytest.raises(UnknownAttributeError):
            simple_schema(virtual={"ghost"})

    def test_all_real_is_a_standard_relation(self):
        """Standard relations are X-Relations with no virtual attributes."""
        schema = simple_schema(virtual=set())
        assert schema.virtual_names == frozenset()
        assert schema.real_names == {"a", "v", "b"}


class TestBindingPatternRestrictions:
    """The Definition 2 restrictions, enforced at construction."""

    def test_valid_contacts(self):
        schema = contacts_schema()
        assert len(schema.binding_patterns) == 1
        assert schema.binding_patterns[0].service_attribute == "messenger"

    def test_service_attribute_must_be_in_schema(self):
        with pytest.raises(BindingPatternError, match="not in schema"):
            ExtendedRelationSchema(
                "r",
                [
                    Attribute("address", DataType.STRING),
                    Attribute("text", DataType.STRING),
                    Attribute("sent", DataType.BOOLEAN),
                ],
                virtual={"text", "sent"},
                binding_patterns=[BindingPattern(SEND_MESSAGE, "messenger")],
            )

    def test_service_attribute_must_be_real(self):
        with pytest.raises(BindingPatternError, match="must be a real attribute"):
            ExtendedRelationSchema(
                "r",
                [
                    Attribute("address", DataType.STRING),
                    Attribute("text", DataType.STRING),
                    Attribute("messenger", DataType.SERVICE),
                    Attribute("sent", DataType.BOOLEAN),
                ],
                virtual={"text", "sent", "messenger"},
                binding_patterns=[BindingPattern(SEND_MESSAGE, "messenger")],
            )

    def test_inputs_must_be_in_schema(self):
        with pytest.raises(BindingPatternError, match="input attributes"):
            ExtendedRelationSchema(
                "r",
                [
                    Attribute("text", DataType.STRING),
                    Attribute("messenger", DataType.SERVICE),
                    Attribute("sent", DataType.BOOLEAN),
                ],
                virtual={"text", "sent"},
                binding_patterns=[BindingPattern(SEND_MESSAGE, "messenger")],
            )

    def test_outputs_must_be_virtual(self):
        with pytest.raises(BindingPatternError, match="must be virtual"):
            ExtendedRelationSchema(
                "r",
                [
                    Attribute("address", DataType.STRING),
                    Attribute("text", DataType.STRING),
                    Attribute("messenger", DataType.SERVICE),
                    Attribute("sent", DataType.BOOLEAN),
                ],
                virtual={"text"},
                binding_patterns=[BindingPattern(SEND_MESSAGE, "messenger")],
            )

    def test_input_type_checked(self):
        with pytest.raises(BindingPatternError, match="has type"):
            ExtendedRelationSchema(
                "r",
                [
                    Attribute("address", DataType.INTEGER),  # wrong type
                    Attribute("text", DataType.STRING),
                    Attribute("messenger", DataType.SERVICE),
                    Attribute("sent", DataType.BOOLEAN),
                ],
                virtual={"text", "sent"},
                binding_patterns=[BindingPattern(SEND_MESSAGE, "messenger")],
            )


class TestProjectionOfTuples:
    """Definition 4: the delta_R coordinate arithmetic."""

    def test_example_4(self):
        """The paper's Example 4, verbatim."""
        schema = contacts_schema()
        t = ("Nicolas", "nicolas@elysee.fr", "email")
        # t[messenger] = t(delta(4)) = t(3) — 1-based in the paper
        assert schema.tuple_value(t, "messenger") == "email"
        assert schema.project_tuple(t, ["address", "messenger"]) == (
            "nicolas@elysee.fr",
            "email",
        )

    def test_real_positions_skip_virtuals(self):
        schema = contacts_schema()
        assert schema.real_position("name") == 0
        assert schema.real_position("address") == 1
        assert schema.real_position("messenger") == 2  # text (virtual) skipped

    def test_projecting_virtual_raises(self):
        schema = contacts_schema()
        with pytest.raises(VirtualAttributeError):
            schema.real_position("text")

    def test_projecting_unknown_raises(self):
        with pytest.raises(UnknownAttributeError):
            contacts_schema().real_position("ghost")

    def test_tuple_from_mapping_rejects_virtual_values(self):
        schema = contacts_schema()
        with pytest.raises(VirtualAttributeError):
            schema.tuple_from_mapping(
                {"name": "X", "address": "a@b", "messenger": "email", "text": "hi"}
            )

    def test_validate_tuple_arity(self):
        schema = contacts_schema()
        with pytest.raises(SchemaError, match="does not fit"):
            schema.validate_tuple(("too", "short"))


class TestProjectDerivation:
    """Table 3a: schema of pi_Y."""

    def test_requested_order_and_partition(self):
        schema = contacts_schema().project(["messenger", "sent", "name"])
        assert schema.names == ("messenger", "sent", "name")  # Y's order
        assert schema.virtual_names == {"sent"}

    def test_binding_pattern_survives_when_all_attrs_kept(self):
        schema = contacts_schema().project(
            ["address", "text", "messenger", "sent"]
        )
        assert len(schema.binding_patterns) == 1

    def test_binding_pattern_dropped_when_input_lost(self):
        schema = contacts_schema().project(["text", "messenger", "sent"])
        assert schema.binding_patterns == ()  # address (input) is gone

    def test_binding_pattern_dropped_when_service_attr_lost(self):
        schema = contacts_schema().project(["address", "text", "sent"])
        assert schema.binding_patterns == ()

    def test_binding_pattern_dropped_when_output_lost(self):
        schema = contacts_schema().project(["address", "text", "messenger"])
        assert schema.binding_patterns == ()

    def test_unknown_attribute(self):
        with pytest.raises(UnknownAttributeError):
            contacts_schema().project(["ghost"])


class TestRenameDerivation:
    """Table 3c: schema of rho."""

    def test_renames_and_keeps_partition(self):
        schema = contacts_schema().rename("text", "body")
        assert "body" in schema.virtual_names
        assert "text" not in schema
        assert schema.names == ("name", "address", "body", "messenger", "sent")

    def test_service_attribute_follows_rename(self):
        schema = contacts_schema().rename("messenger", "channel")
        assert schema.binding_patterns[0].service_attribute == "channel"

    def test_renaming_prototype_input_drops_pattern(self):
        """Prototype schemas are fixed: renaming 'address' orphans the BP."""
        schema = contacts_schema().rename("address", "addr")
        assert schema.binding_patterns == ()

    def test_renaming_prototype_output_drops_pattern(self):
        schema = contacts_schema().rename("sent", "ok")
        assert schema.binding_patterns == ()

    def test_new_name_must_be_fresh(self):
        with pytest.raises(SchemaError, match="already in schema"):
            contacts_schema().rename("text", "name")

    def test_old_name_must_exist(self):
        with pytest.raises(UnknownAttributeError):
            contacts_schema().rename("ghost", "x")


class TestRealizeDerivation:
    """Realization (Tables 3e/3f): virtual attributes become real."""

    def test_realize_moves_partition(self):
        schema = contacts_schema().realize(["text"])
        assert "text" in schema.real_names
        assert schema.virtual_names == {"sent"}

    def test_realize_keeps_pattern_with_virtual_outputs(self):
        schema = contacts_schema().realize(["text"])
        assert len(schema.binding_patterns) == 1  # sent is still virtual

    def test_realize_output_drops_pattern(self):
        schema = contacts_schema().realize(["sent"])
        assert schema.binding_patterns == ()

    def test_realize_real_attribute_raises(self):
        with pytest.raises(VirtualAttributeError, match="already real"):
            contacts_schema().realize(["name"])

    def test_realize_check_photo_outputs_keeps_take_photo(self):
        """Realizing quality/delay keeps takePhoto (photo still virtual)."""
        schema = cameras_schema().realize(["quality", "delay"])
        names = [bp.prototype.name for bp in schema.binding_patterns]
        assert names == ["takePhoto"]


class TestJoinDerivation:
    """Table 3d: schema of the natural join."""

    def test_disjoint_schemas_concatenate(self):
        left = simple_schema()
        right = ExtendedRelationSchema(
            "s", [Attribute("c", DataType.STRING)], set()
        )
        joined = left.join(right)
        assert joined.names == ("a", "v", "b", "c")
        assert joined.virtual_names == {"v"}

    def test_real_in_one_operand_realizes(self):
        """An attribute virtual on one side and real on the other becomes
        real in the result — implicit realization."""
        left = simple_schema()  # v virtual
        right = ExtendedRelationSchema(
            "s", [Attribute("v", DataType.REAL)], set()
        )  # v real
        joined = left.join(right)
        assert "v" in joined.real_names

    def test_virtual_in_both_stays_virtual(self):
        left = simple_schema()
        right = ExtendedRelationSchema(
            "s", [Attribute("v", DataType.REAL)], {"v"}
        )
        joined = left.join(right)
        assert "v" in joined.virtual_names

    def test_ursa_type_conflict(self):
        left = simple_schema()
        right = ExtendedRelationSchema(
            "s", [Attribute("a", DataType.INTEGER)], set()
        )
        with pytest.raises(SchemaError, match="URSA"):
            left.join(right)

    def test_binding_patterns_union(self):
        joined = contacts_schema().join(cameras_schema())
        names = sorted(bp.prototype.name for bp in joined.binding_patterns)
        assert names == ["checkPhoto", "sendMessage", "takePhoto"]

    def test_join_drops_pattern_whose_output_became_real(self):
        """If the other operand holds 'sent' as a real attribute, the
        sendMessage pattern dies in the join."""
        other = ExtendedRelationSchema(
            "s", [Attribute("sent", DataType.BOOLEAN)], set()
        )
        joined = contacts_schema().join(other)
        assert joined.binding_patterns == ()
        assert "sent" in joined.real_names


class TestCompatibility:
    def test_compatible_ignores_name(self):
        a = contacts_schema()
        b = contacts_schema().with_name("other")
        assert a.compatible(b)
        assert a != b  # equality includes the relation symbol

    def test_incompatible_partition(self):
        a = simple_schema()
        b = simple_schema(virtual=set())
        assert not a.compatible(b)

    def test_describe_mentions_virtual(self):
        text = contacts_schema().describe()
        assert "text STRING VIRTUAL" in text
        assert "sendMessage[messenger]" in text
