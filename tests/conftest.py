"""Shared fixtures: the paper's running example as a concrete environment.

``paper`` builds exactly the relational pervasive environment of
Examples 1–4 (the four prototypes of Table 1, the nine services, the
``contacts`` / ``cameras`` X-Relations of Table 2 and the ``sensors``
table of the motivating example) via
:func:`repro.devices.paper_example.build_paper_example`, exposing the
messengers' shared outbox so tests can assert side effects.
"""

from __future__ import annotations

import pytest

from repro.devices.paper_example import PaperExample, build_paper_example
from repro.model.environment import PervasiveEnvironment


@pytest.fixture
def paper() -> PaperExample:
    """A fresh paper environment per test."""
    return build_paper_example()


@pytest.fixture
def paper_env(paper: PaperExample) -> PervasiveEnvironment:
    return paper.environment
