"""Tests for the realization operators α and β (Tables 3e and 3f)."""

import pytest

from repro.algebra import col, scan
from repro.errors import (
    InvalidOperatorError,
    InvocationError,
    VirtualAttributeError,
)


class TestAssignment:
    def test_constant_assignment(self, paper_env):
        q = scan(paper_env, "contacts").assign("text", "Bonjour!").query()
        result = q.evaluate(paper_env).relation
        assert "text" in result.schema.real_names
        assert set(result.column("text")) == {"Bonjour!"}
        assert len(result) == 3

    def test_assignment_from_attribute(self, paper_env):
        q = scan(paper_env, "contacts").assign_from("text", "address").query()
        result = q.evaluate(paper_env).relation
        rows = {m["name"]: m["text"] for m in result.to_mappings()}
        assert rows["Carla"] == "carla@elysee.fr"

    def test_only_virtual_attributes_assignable(self, paper_env):
        with pytest.raises(VirtualAttributeError, match="already real"):
            scan(paper_env, "contacts").assign("name", "X")

    def test_source_must_be_real(self, paper_env):
        with pytest.raises(VirtualAttributeError, match="must be real"):
            scan(paper_env, "contacts").assign_from("sent", "text")

    def test_constant_type_checked(self, paper_env):
        from repro.errors import TypingError

        with pytest.raises(TypingError):
            scan(paper_env, "contacts").assign("text", 42)

    def test_source_type_checked(self, paper_env):
        with pytest.raises(InvalidOperatorError, match="cannot assign"):
            scan(paper_env, "contacts").assign_from("sent", "address")

    def test_assignment_drops_pattern_realizing_its_output(self, paper_env):
        node = scan(paper_env, "contacts").assign("sent", True).node
        assert node.schema.binding_patterns == ()

    def test_assignment_keeps_pattern_for_inputs(self, paper_env):
        node = scan(paper_env, "contacts").assign("text", "x").node
        assert len(node.schema.binding_patterns) == 1

    def test_double_assignment_rejected(self, paper_env):
        builder = scan(paper_env, "contacts").assign("text", "x")
        with pytest.raises(VirtualAttributeError):
            builder.assign("text", "y")

    def test_value_positioned_correctly(self, paper_env):
        """'text' sits between 'address' and 'messenger' in schema order."""
        q = scan(paper_env, "contacts").assign("text", "T").query()
        result = q.evaluate(paper_env).relation
        t = sorted(result.tuples)[0]
        assert t == ("Carla", "carla@elysee.fr", "T", "email")


class TestInvocation:
    def test_invocation_realizes_outputs(self, paper_env):
        q = scan(paper_env, "sensors").invoke("getTemperature").query()
        result = q.evaluate(paper_env).relation
        assert "temperature" in result.schema.real_names
        assert len(result) == 4
        for value in result.column("temperature"):
            assert isinstance(value, float)

    def test_deterministic_at_instant(self, paper_env):
        """Services are deterministic at a given instant (Section 3.2)."""
        q = scan(paper_env, "sensors").invoke("getTemperature").query()
        r1 = q.evaluate(paper_env, instant=5).relation
        r2 = q.evaluate(paper_env, instant=5).relation
        assert r1 == r2

    def test_results_vary_across_instants(self, paper_env):
        q = scan(paper_env, "sensors").invoke("getTemperature").query()
        r1 = q.evaluate(paper_env, instant=1).relation
        r2 = q.evaluate(paper_env, instant=2).relation
        assert r1 != r2  # measurement noise differs

    def test_inputs_must_be_real(self, paper_env):
        """β(takePhoto) needs 'quality' realized first (Table 3f)."""
        with pytest.raises(InvalidOperatorError, match="still virtual"):
            scan(paper_env, "cameras").invoke("takePhoto")

    def test_zero_output_tuples_drop_input(self, paper_env):
        """checkPhoto on a camera that cannot see the area yields nothing:
        inputs are duplicated once per output tuple, so 0 outputs remove
        the tuple."""
        q = (
            scan(paper_env, "cameras")
            .assign("quality", 5)
            .invoke("takePhoto")
            .query()
        )
        # Every camera CAN see its own area (the tuples carry each camera's
        # area), so all three yield photos.
        assert len(q.evaluate(paper_env).relation) == 3

    def test_pipeline_check_then_take(self, paper_env):
        """Q2's shape: checkPhoto realizes quality, takePhoto consumes it."""
        q = (
            scan(paper_env, "cameras")
            .invoke("checkPhoto")
            .select(col("quality").ge(5))
            .invoke("takePhoto")
            .project("camera", "photo")
            .query("Q2")
        )
        result = q.evaluate(paper_env).relation
        assert len(result) >= 1
        for t in result:
            photo = result.schema.tuple_value(t, "photo")
            assert isinstance(photo, bytes)

    def test_unknown_binding_pattern(self, paper_env):
        from repro.errors import BindingPatternError

        with pytest.raises(BindingPatternError):
            scan(paper_env, "contacts").invoke("checkPhoto")

    def test_invocation_error_raised_by_default(self, paper_env):
        paper_env.unregister_service("sensor01")
        q = scan(paper_env, "sensors").invoke("getTemperature").query()
        from repro.errors import UnknownServiceError

        with pytest.raises(UnknownServiceError):
            q.evaluate(paper_env)

    def test_invocation_error_skip_policy(self, paper_env):
        paper_env.unregister_service("sensor01")
        q = (
            scan(paper_env, "sensors")
            .invoke("getTemperature", on_error="skip")
            .query()
        )
        result = q.evaluate(paper_env).relation
        assert len(result) == 3  # sensor01's tuple dropped
        assert "sensor01" not in result.column("sensor")

    def test_bad_error_policy(self, paper_env):
        with pytest.raises(InvalidOperatorError, match="error policy"):
            scan(paper_env, "sensors").invoke("getTemperature", on_error="explode")

    def test_active_invocation_records_actions(self, paper_env):
        q = (
            scan(paper_env, "contacts")
            .assign("text", "Hi")
            .invoke("sendMessage")
            .query()
        )
        result = q.evaluate(paper_env)
        assert len(result.actions) == 3
        services = {a.service for a in result.actions}
        assert services == {"email", "jabber"}

    def test_passive_invocation_records_no_actions(self, paper_env):
        q = scan(paper_env, "sensors").invoke("getTemperature").query()
        assert q.evaluate(paper_env).actions == frozenset()

    def test_invocation_counts_tracked(self, paper_env):
        registry = paper_env.registry
        registry.reset_invocation_count()
        q = scan(paper_env, "sensors").invoke("getTemperature").query()
        q.evaluate(paper_env)
        assert registry.invocation_count == 4
