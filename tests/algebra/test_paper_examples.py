"""The paper's worked examples, reproduced exactly.

* Table 4's queries Q1, Q1′, Q2, Q2′ (one-shot);
* Example 6's action sets of Q1 vs Q1′;
* Example 7's equivalence verdicts (Q1 ≢ Q1′, Q2 ≡ Q2′).
"""

import pytest

from repro.algebra import Query, Selection, check_equivalence, col, scan
from repro.lang import parse_query


def q1(env):
    """β(sendMessage)(α(text:='Bonjour!')(σ(name≠'Carla')(contacts)))."""
    return (
        scan(env, "contacts")
        .select(col("name").ne("Carla"))
        .assign("text", "Bonjour!")
        .invoke("sendMessage")
        .query("Q1")
    )


def q1_prime(env):
    """σ(name≠'Carla')(β(sendMessage)(α(text:='Bonjour!')(contacts)))."""
    inner = (
        scan(env, "contacts")
        .assign("text", "Bonjour!")
        .invoke("sendMessage")
        .node
    )
    return Query(Selection(inner, col("name").ne("Carla")), "Q1prime")


def q2(env):
    """π(photo)(β(takePhoto)(σ(quality≥5)(σ(area='office')(β(checkPhoto)(cameras)))))."""
    return (
        scan(env, "cameras")
        .select(col("area").eq("office"))
        .invoke("checkPhoto")
        .select(col("quality").ge(5))
        .invoke("takePhoto")
        .project("photo")
        .query("Q2")
    )


def q2_prime(env):
    """The unoptimized version: select area at the end."""
    inner = (
        scan(env, "cameras")
        .invoke("checkPhoto")
        .select(col("quality").ge(5))
        .invoke("takePhoto")
        .select(col("area").eq("office"))
        .project("photo")
    )
    return inner.query("Q2prime")


class TestQ1:
    def test_sends_to_everyone_but_carla(self, paper):
        result = q1(paper.environment).evaluate(paper.environment)
        recipients = {m.address for m in paper.outbox.messages}
        assert recipients == {"nicolas@elysee.fr", "francois@im.gouv.fr"}
        assert len(result.relation) == 2

    def test_result_has_sent_realized(self, paper):
        result = q1(paper.environment).evaluate(paper.environment)
        assert "sent" in result.relation.schema.real_names
        assert set(result.relation.column("sent")) == {True}

    def test_example6_action_set(self, paper):
        """Example 6, verbatim: the two actions of Q1."""
        result = q1(paper.environment).evaluate(paper.environment)
        rendered = result.actions.describe()
        assert rendered == (
            "(sendMessage, email, (nicolas@elysee.fr, Bonjour!))\n"
            "(sendMessage, jabber, (francois@im.gouv.fr, Bonjour!))"
        )

    def test_example6_action_set_q1_prime(self, paper):
        """Q1′ additionally messages Carla."""
        result = q1_prime(paper.environment).evaluate(paper.environment)
        rendered = result.actions.describe()
        assert rendered == (
            "(sendMessage, email, (carla@elysee.fr, Bonjour!))\n"
            "(sendMessage, email, (nicolas@elysee.fr, Bonjour!))\n"
            "(sendMessage, jabber, (francois@im.gouv.fr, Bonjour!))"
        )

    def test_q1_prime_still_filters_result(self, paper):
        result = q1_prime(paper.environment).evaluate(paper.environment)
        assert len(result.relation) == 2  # Carla filtered from the result
        assert len(paper.outbox.messages) == 3  # ... but messaged anyway


class TestExample7Equivalence:
    def test_q1_not_equivalent_to_q1_prime(self, paper):
        """Same result, different action sets → not equivalent (Def. 9)."""
        report = check_equivalence(
            q1(paper.environment), q1_prime(paper.environment), paper.environment
        )
        assert report.same_result
        assert not report.same_actions
        assert not report.equivalent

    def test_q2_equivalent_to_q2_prime(self, paper):
        """checkPhoto/takePhoto are passive: both action sets are empty and
        the results coincide → equivalent."""
        report = check_equivalence(
            q2(paper.environment), q2_prime(paper.environment), paper.environment
        )
        assert report.equivalent

    def test_q2_cheaper_than_q2_prime(self, paper):
        """The rewritten Q2 triggers fewer (passive) invocations."""
        registry = paper.environment.registry
        registry.reset_invocation_count()
        q2(paper.environment).evaluate(paper.environment)
        optimized_count = registry.invocation_count
        registry.reset_invocation_count()
        q2_prime(paper.environment).evaluate(paper.environment)
        naive_count = registry.invocation_count
        assert optimized_count < naive_count

    def test_active_take_photo_breaks_equivalence(self, paper):
        """Example 7's closing remark: if takePhoto were tagged active,
        Q2 and Q2′ would no longer be equivalent."""
        from repro.devices.cameras import Camera
        from repro.devices.prototypes import CHECK_PHOTO
        from repro.model.attributes import Attribute
        from repro.model.binding import BindingPattern
        from repro.model.environment import PervasiveEnvironment
        from repro.model.prototypes import Prototype
        from repro.model.relation import XRelation
        from repro.model.schema import RelationSchema
        from repro.model.services import Service
        from repro.model.types import DataType
        from repro.model.xschema import ExtendedRelationSchema

        take_photo_active = Prototype(
            "takePhoto",
            RelationSchema.of(area="STRING", quality="INTEGER"),
            RelationSchema.of(photo="BLOB"),
            active=True,
        )
        env = PervasiveEnvironment()
        env.declare_prototype(CHECK_PHOTO)
        env.declare_prototype(take_photo_active)
        cameras = {}
        for ref, area in (("camera01", "office"), ("camera02", "corridor")):
            camera = Camera(ref, area, quality=8)
            cameras[ref] = camera

            def check(inputs, instant, camera=camera):
                return camera.check_photo(str(inputs["area"]), instant)

            def take(inputs, instant, camera=camera):
                return camera.take_photo(
                    str(inputs["area"]), int(inputs["quality"]), instant
                )

            env.register_service(
                Service(ref, {CHECK_PHOTO: check, take_photo_active: take})
            )
        schema = ExtendedRelationSchema(
            "cameras",
            [
                Attribute("camera", DataType.SERVICE),
                Attribute("area", DataType.STRING),
                Attribute("quality", DataType.INTEGER),
                Attribute("delay", DataType.REAL),
                Attribute("photo", DataType.BLOB),
            ],
            virtual={"quality", "delay", "photo"},
            binding_patterns=[
                BindingPattern(CHECK_PHOTO, "camera"),
                BindingPattern(take_photo_active, "camera"),
            ],
        )
        env.add_relation(
            XRelation.from_mappings(
                schema,
                [
                    {"camera": "camera01", "area": "office"},
                    {"camera": "camera02", "area": "corridor"},
                ],
            )
        )
        report = check_equivalence(q2(env), q2_prime(env), env)
        assert report.same_result
        assert not report.same_actions
        assert not report.equivalent


class TestTable4ViaSAL:
    """The same queries written in the Serena Algebra Language."""

    def test_q1_text(self, paper):
        query = parse_query(
            "invoke[sendMessage, messenger](assign[text := 'Bonjour!']("
            "select[name != 'Carla'](contacts)))",
            paper.environment,
            "Q1",
        )
        result = query.evaluate(paper.environment)
        assert len(result.actions) == 2

    def test_q2_text(self, paper):
        query = parse_query(
            "project[photo](invoke[takePhoto, camera](select[quality >= 5]("
            "invoke[checkPhoto, camera](select[area = 'office'](cameras)))))",
            paper.environment,
            "Q2",
        )
        result = query.evaluate(paper.environment)
        assert result.relation.schema.names == ("photo",)
        assert len(result.relation) >= 1
