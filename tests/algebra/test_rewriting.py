"""Tests for the rewriting rules of Table 5 and the rule engine."""

import pytest

from repro.algebra import (
    Assignment,
    Invocation,
    NaturalJoin,
    Projection,
    Query,
    Selection,
    check_equivalence,
    col,
    scan,
)
from repro.algebra.rewriting import (
    DEFAULT_RULES,
    PUSHDOWN_RULES,
    RewriteTrace,
    apply_rule,
    rewrite_fixpoint,
    rule_by_name,
)
from repro.bench.workloads import random_environment


def plan_shape(node) -> list[str]:
    return [type(n).__name__ for n in node.walk()]


class TestSelectionBelowAssignment:
    """σ_F(α(r)) → α(σ_F(r)) if A ∉ attrs(F)   [Table 5]."""

    def test_applies(self, paper_env):
        plan = (
            scan(paper_env, "contacts")
            .assign("text", "Hi")
            .select(col("name").ne("Carla"))
            .node
        )
        rewritten = apply_rule(plan, rule_by_name("selection_below_assignment"))
        assert rewritten is not None
        assert plan_shape(rewritten) == ["Assignment", "Selection", "Scan"]

    def test_blocked_when_formula_uses_assigned_attr(self, paper_env):
        plan = (
            scan(paper_env, "contacts")
            .assign("text", "Hi")
            .select(col("text").eq("Hi"))
            .node
        )
        assert apply_rule(plan, rule_by_name("selection_below_assignment")) is None

    def test_preserves_equivalence(self, paper):
        env = paper.environment
        original = (
            scan(env, "contacts")
            .assign("text", "Hi")
            .select(col("name").ne("Carla"))
            .query()
        )
        rewritten = rewrite_fixpoint(original, PUSHDOWN_RULES)
        assert check_equivalence(original, rewritten, env).equivalent


class TestSelectionBelowInvocation:
    """σ_F(β(r)) → β(σ_F(r)) — passive patterns only."""

    def test_applies_to_passive(self, paper_env):
        plan = (
            scan(paper_env, "sensors")
            .invoke("getTemperature")
            .select(col("location").eq("office"))
            .node
        )
        rewritten = apply_rule(plan, rule_by_name("selection_below_invocation"))
        assert rewritten is not None
        assert plan_shape(rewritten) == ["Invocation", "Selection", "Scan"]

    def test_blocked_for_active(self, paper_env):
        """Pushing σ below an active β would change the action set — the
        Q1/Q1′ trap."""
        plan = (
            scan(paper_env, "contacts")
            .assign("text", "Hi")
            .invoke("sendMessage")
            .select(col("name").ne("Carla"))
            .node
        )
        assert apply_rule(plan, rule_by_name("selection_below_invocation")) is None

    def test_blocked_when_formula_uses_outputs(self, paper_env):
        plan = (
            scan(paper_env, "sensors")
            .invoke("getTemperature")
            .select(col("temperature").gt(30.0))
            .node
        )
        assert apply_rule(plan, rule_by_name("selection_below_invocation")) is None

    def test_saves_invocations(self, paper):
        env = paper.environment
        naive = (
            scan(env, "sensors")
            .invoke("getTemperature")
            .select(col("location").eq("office"))
            .query()
        )
        optimized = rewrite_fixpoint(naive, PUSHDOWN_RULES)
        registry = env.registry

        registry.reset_invocation_count()
        r_naive = naive.evaluate(env)
        naive_calls = registry.invocation_count

        registry.reset_invocation_count()
        r_opt = optimized.evaluate(env)
        optimized_calls = registry.invocation_count

        assert r_naive.relation == r_opt.relation
        assert naive_calls == 4  # all sensors
        assert optimized_calls == 2  # office sensors only

    def test_reverse_direction_hoists(self, paper_env):
        plan = (
            scan(paper_env, "sensors")
            .select(col("location").eq("office"))
            .invoke("getTemperature")
            .node
        )
        rewritten = apply_rule(plan, rule_by_name("invocation_below_selection"))
        assert rewritten is not None
        assert plan_shape(rewritten) == ["Selection", "Invocation", "Scan"]


class TestProjectionRules:
    def test_projection_below_assignment(self, paper_env):
        plan = (
            scan(paper_env, "contacts")
            .assign("text", "Hi")
            .project("name", "text")
            .node
        )
        rewritten = apply_rule(plan, rule_by_name("projection_below_assignment"))
        assert rewritten is not None
        assert plan_shape(rewritten) == ["Assignment", "Projection", "Scan"]

    def test_projection_below_assignment_blocked_without_attr(self, paper_env):
        plan = (
            scan(paper_env, "contacts")
            .assign("text", "Hi")
            .project("name", "address")
            .node
        )
        assert apply_rule(plan, rule_by_name("projection_below_assignment")) is None

    def test_projection_below_invocation(self, paper_env):
        plan = (
            scan(paper_env, "sensors")
            .invoke("getTemperature")
            .project("sensor", "temperature")
            .node
        )
        rewritten = apply_rule(plan, rule_by_name("projection_below_invocation"))
        assert rewritten is not None
        assert plan_shape(rewritten) == ["Invocation", "Projection", "Scan"]

    def test_projection_below_invocation_blocked_when_dropping_bp_attr(
        self, paper_env
    ):
        plan = (
            scan(paper_env, "sensors")
            .invoke("getTemperature")
            .project("temperature")
            .node
        )
        assert apply_rule(plan, rule_by_name("projection_below_invocation")) is None

    def test_cascade_projections(self, paper_env):
        plan = (
            scan(paper_env, "contacts")
            .project("name", "address", "messenger")
            .project("name")
            .node
        )
        rewritten = apply_rule(plan, rule_by_name("cascade_projections"))
        assert rewritten is not None
        assert plan_shape(rewritten) == ["Projection", "Scan"]


class TestJoinRules:
    def test_selection_pushes_into_left(self, paper_env):
        plan = Selection(
            NaturalJoin(
                scan(paper_env, "contacts").node,
                scan(paper_env, "sensors").node,
            ),
            col("name").eq("Carla"),
        )
        rewritten = apply_rule(plan, rule_by_name("selection_below_join"))
        assert rewritten is not None
        assert isinstance(rewritten, NaturalJoin)
        assert isinstance(rewritten.children[0], Selection)

    def test_selection_pushes_into_right(self, paper_env):
        plan = Selection(
            NaturalJoin(
                scan(paper_env, "contacts").node,
                scan(paper_env, "sensors").node,
            ),
            col("location").eq("office"),
        )
        rewritten = apply_rule(plan, rule_by_name("selection_below_join"))
        assert isinstance(rewritten.children[1], Selection)

    def test_selection_spanning_both_blocked(self, paper_env):
        plan = Selection(
            NaturalJoin(
                scan(paper_env, "contacts").node,
                scan(paper_env, "sensors").node,
            ),
            col("name").eq(col("location")),
        )
        assert apply_rule(plan, rule_by_name("selection_below_join")) is None

    def test_assignment_pushes_into_owner(self, paper_env):
        plan = Assignment(
            NaturalJoin(
                scan(paper_env, "contacts").node,
                scan(paper_env, "sensors").node,
            ),
            "text",
            "Hi",
            False,
        )
        rewritten = apply_rule(plan, rule_by_name("assignment_below_join"))
        assert rewritten is not None
        assert isinstance(rewritten, NaturalJoin)
        assert isinstance(rewritten.children[0], Assignment)

    def test_passive_invocation_pushes_into_owner(self, paper_env):
        joined = NaturalJoin(
            scan(paper_env, "sensors").node,
            scan(paper_env, "contacts").node,
        )
        bp = paper_env.schema("sensors").binding_pattern("getTemperature")
        plan = Invocation(joined, bp)
        rewritten = apply_rule(plan, rule_by_name("invocation_below_join"))
        assert rewritten is not None
        assert isinstance(rewritten, NaturalJoin)
        assert isinstance(rewritten.children[0], Invocation)

    def test_active_invocation_never_moves_through_join(self, paper_env):
        joined = NaturalJoin(
            scan(paper_env, "contacts").assign("text", "Hi").node,
            scan(paper_env, "sensors").node,
        )
        bp = paper_env.schema("contacts").binding_pattern("sendMessage")
        plan = Invocation(joined, bp)
        assert apply_rule(plan, rule_by_name("invocation_below_join")) is None


class TestEngine:
    def test_merge_selections(self, paper_env):
        plan = (
            scan(paper_env, "contacts")
            .select(col("name").ne("Carla"))
            .select(col("messenger").eq("email"))
            .node
        )
        rewritten = apply_rule(plan, rule_by_name("merge_selections"))
        assert plan_shape(rewritten) == ["Selection", "Scan"]

    def test_fixpoint_terminates_and_traces(self, paper_env):
        query = (
            scan(paper_env, "sensors")
            .invoke("getTemperature")
            .select(col("location").eq("office"))
            .select(col("sensor").ne("sensor06"))
            .query("nested")
        )
        trace = RewriteTrace()
        rewritten = rewrite_fixpoint(query, PUSHDOWN_RULES, trace=trace)
        assert isinstance(rewritten, Query)
        assert rewritten.name == "nested"
        assert len(trace) >= 2
        shape = plan_shape(rewritten.root)
        assert shape == ["Invocation", "Selection", "Scan"]

    def test_apply_rule_returns_none_when_inapplicable(self, paper_env):
        plan = scan(paper_env, "contacts").node
        for rule in DEFAULT_RULES:
            assert apply_rule(plan, rule) is None

    def test_all_pushdown_rules_preserve_equivalence_on_random_env(self):
        """Rewriting must preserve Definition 9 on arbitrary environments."""
        for seed in range(3):
            rnd = random_environment(seed)
            env = rnd.environment
            query = (
                scan(env, "items")
                .invoke("getScore")
                .select(col("category").eq("alpha"))
                .project("item", "category", "score")
                .query()
            )
            rewritten = rewrite_fixpoint(query, PUSHDOWN_RULES)
            assert rewritten.root != query.root  # something fired
            report = check_equivalence(query, rewritten, env, instant=seed)
            assert report.equivalent
