"""Tests for the window and streaming operators (Section 4.2)."""

import pytest

from repro.algebra import (
    EvaluationContext,
    Query,
    Scan,
    Streaming,
    StreamType,
    Window,
    col,
    scan,
)
from repro.continuous.xdrelation import XDRelation
from repro.devices.scenario import temperatures_schema
from repro.errors import InvalidOperatorError
from repro.model.environment import PervasiveEnvironment


@pytest.fixture
def stream_env():
    env = PervasiveEnvironment()
    stream = XDRelation(temperatures_schema(), infinite=True)
    env.add_relation(stream)
    for instant in range(1, 6):
        stream.insert(
            [("s1", "office", 20.0 + instant, instant)], instant=instant
        )
    return env


class TestWindow:
    def test_window_requires_stream(self, paper_env):
        with pytest.raises(InvalidOperatorError, match="must be an infinite"):
            scan(paper_env, "contacts").window(1)

    def test_window_period_positive(self, stream_env):
        with pytest.raises(InvalidOperatorError, match="positive integer"):
            scan(stream_env, "temperatures").window(0)

    def test_window_one_sees_current_insertions_only(self, stream_env):
        q = scan(stream_env, "temperatures").window(1).query()
        result = q.evaluate(stream_env, instant=3).relation
        assert len(result) == 1
        assert result.column("temperature") == [23.0]

    def test_window_covers_period(self, stream_env):
        q = scan(stream_env, "temperatures").window(3).query()
        result = q.evaluate(stream_env, instant=5).relation
        assert sorted(result.column("at")) == [3, 4, 5]

    def test_window_larger_than_history(self, stream_env):
        q = scan(stream_env, "temperatures").window(100).query()
        assert len(q.evaluate(stream_env, instant=5).relation) == 5

    def test_window_expires_old_tuples(self, stream_env):
        """Tuples older than the period leave the window (RSS scenario's
        'one-hour-old news expired')."""
        q = scan(stream_env, "temperatures").window(2).query()
        assert len(q.evaluate(stream_env, instant=10).relation) == 0

    def test_window_output_is_finite(self, stream_env):
        node = scan(stream_env, "temperatures").window(1).node
        assert not node.is_stream
        assert node.children[0].is_stream

    def test_window_preserves_schema(self, stream_env):
        node = scan(stream_env, "temperatures").window(1).node
        assert node.schema.compatible(stream_env.schema("temperatures"))


class TestStreaming:
    def test_streaming_requires_finite(self, stream_env):
        with pytest.raises(InvalidOperatorError, match="must be a finite"):
            Streaming(scan(stream_env, "temperatures").node, "insertion")

    def test_output_is_stream(self, paper_env):
        node = Streaming(scan(paper_env, "contacts").node, "insertion")
        assert node.is_stream

    def test_unknown_kind(self, paper_env):
        with pytest.raises(InvalidOperatorError, match="unknown streaming type"):
            Streaming(scan(paper_env, "contacts").node, "explosion")

    def test_heartbeat_emits_current_state(self, paper_env):
        node = Streaming(scan(paper_env, "contacts").node, StreamType.HEARTBEAT)
        result = Query(node).evaluate(paper_env).relation
        assert len(result) == 3

    def test_insertion_emits_deltas_under_persistent_context(self):
        env = PervasiveEnvironment()
        xd = XDRelation(temperatures_schema().with_name("finite_temps"))
        env.add_relation(xd, "finite_temps")
        xd.insert([("s1", "office", 20.0, 0)], instant=0)

        leaf = Scan("finite_temps", xd.schema, stream=False)
        node = Streaming(leaf, StreamType.INSERTION)
        states: dict = {}
        ctx0 = EvaluationContext(env, 0, states)
        assert len(node.evaluate(ctx0)) == 1  # initial content is inserted

        xd.insert([("s2", "roof", 10.0, 1)], instant=1)
        ctx1 = ctx0.at_instant(1)
        emitted = node.evaluate(ctx1)
        assert emitted.column("sensor") == ["s2"]  # only the new tuple

    def test_deletion_emits_removed_tuples(self):
        env = PervasiveEnvironment()
        xd = XDRelation(temperatures_schema().with_name("finite_temps"))
        env.add_relation(xd, "finite_temps")
        t = ("s1", "office", 20.0, 0)
        xd.insert([t], instant=0)

        leaf = Scan("finite_temps", xd.schema, stream=False)
        node = Streaming(leaf, StreamType.DELETION)
        states: dict = {}
        ctx0 = EvaluationContext(env, 0, states)
        assert len(node.evaluate(ctx0)) == 0

        xd.delete([t], instant=1)
        emitted = node.evaluate(ctx0.at_instant(1))
        assert set(emitted.tuples) == {t}

    def test_window_over_streaming_roundtrip(self, stream_env):
        """S[insertion] of a windowed stream re-streams the insertions;
        a W[1] on top recovers per-instant deltas."""
        plan = (
            scan(stream_env, "temperatures")
            .window(1)
            .stream("insertion")
            .window(1)
            .query()
        )
        states: dict = {}
        ctx = EvaluationContext(stream_env, 1, states)
        r1 = plan.evaluate_in(ctx)
        assert len(r1.relation) == 1
        r2 = plan.evaluate_in(ctx.at_instant(2))
        assert r2.relation.column("at") == [2]


class TestStreamTyping:
    """Finite-only operators must reject stream operands."""

    @pytest.mark.parametrize(
        "build",
        [
            lambda b: b.project("sensor"),
            lambda b: b.select(col("temperature").gt(0.0)),
            lambda b: b.rename("sensor", "s"),
            lambda b: b.aggregate(["location"], ("avg", "temperature", "m")),
        ],
    )
    def test_rejects_stream_operand(self, stream_env, build):
        with pytest.raises(InvalidOperatorError, match="finite"):
            build(scan(stream_env, "temperatures"))

    def test_join_rejects_stream(self, stream_env, paper_env):
        with pytest.raises(InvalidOperatorError, match="finite"):
            scan(stream_env, "temperatures").join(
                Scan("contacts", paper_env.schema("contacts"))
            )

    def test_window_then_operators_ok(self, stream_env):
        q = (
            scan(stream_env, "temperatures")
            .window(2)
            .select(col("temperature").gt(21.0))
            .project("sensor", "temperature")
            .query()
        )
        result = q.evaluate(stream_env, instant=3).relation
        assert len(result) == 2  # instants 2 and 3
