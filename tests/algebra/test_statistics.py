"""Tests for environment statistics and the statistics-aware cost model."""

import pytest

from repro.algebra import CostModel, col, collect_statistics, scan
from repro.algebra.formula import TrueFormula
from repro.algebra.statistics import (
    CONTAINS_SELECTIVITY,
    RANGE_SELECTIVITY,
    RelationStatistics,
)


@pytest.fixture
def stats(paper_env):
    return collect_statistics(paper_env, instant=0)


class TestCollection:
    def test_cardinalities(self, stats):
        assert stats.relation("contacts").cardinality == 3
        assert stats.relation("sensors").cardinality == 4
        assert stats.relation("cameras").cardinality == 3

    def test_distinct_counts(self, stats):
        contacts = stats.relation("contacts")
        assert contacts.distinct["name"] == 3
        assert contacts.distinct["messenger"] == 2  # email, jabber
        sensors = stats.relation("sensors")
        assert sensors.distinct["location"] == 3

    def test_virtual_attributes_not_counted(self, stats):
        assert "text" not in stats.relation("contacts").distinct

    def test_streams_skipped(self, paper_env):
        from repro.continuous.xdrelation import XDRelation
        from repro.devices.scenario import temperatures_schema

        paper_env.add_relation(XDRelation(temperatures_schema(), infinite=True))
        stats = collect_statistics(paper_env)
        assert "temperatures" not in stats

    def test_distinct_anywhere_takes_max(self, stats):
        # 'location' appears only in sensors here.
        assert stats.distinct_anywhere("location") == 3
        assert stats.distinct_anywhere("nonexistent") is None


class TestSelectivity:
    def test_equality_uses_distinct(self, stats):
        assert stats.selectivity(col("messenger").eq("email")) == pytest.approx(0.5)
        assert stats.selectivity(col("name").eq("Carla")) == pytest.approx(1 / 3)

    def test_inequality_is_complement(self, stats):
        assert stats.selectivity(col("name").ne("Carla")) == pytest.approx(2 / 3)

    def test_range_default(self, stats):
        assert stats.selectivity(col("threshold").gt(5.0)) == RANGE_SELECTIVITY

    def test_contains_default(self, stats):
        assert stats.selectivity(col("name").contains("a")) == CONTAINS_SELECTIVITY

    def test_connectives(self, stats):
        conj = col("messenger").eq("email") & col("name").eq("Carla")
        assert stats.selectivity(conj) == pytest.approx(0.5 / 3)
        disj = col("messenger").eq("email") | col("name").eq("Carla")
        expected = 0.5 + 1 / 3 - 0.5 / 3
        assert stats.selectivity(disj) == pytest.approx(expected)
        neg = ~col("messenger").eq("email")
        assert stats.selectivity(neg) == pytest.approx(0.5)

    def test_true_formula(self, stats):
        assert stats.selectivity(TrueFormula()) == 1.0

    def test_attr_to_attr_equality(self, stats):
        sel = stats.selectivity(col("name").eq(col("address")))
        assert sel == pytest.approx(1 / 3)  # 1/max(3, 3)


class TestStatisticsAwareCostModel:
    def test_selection_cardinality_refined(self, paper_env, stats):
        plain = CostModel(paper_env)
        informed = CostModel(paper_env, statistics=stats)
        node = (
            scan(paper_env, "contacts").select(col("name").eq("Carla")).node
        )
        assert plain.cardinality(node) == pytest.approx(1.5)   # 0.5 default
        assert informed.cardinality(node) == pytest.approx(1.0)  # 1/3 of 3

    def test_join_cardinality_refined(self, paper_env, stats):
        from repro.devices.scenario import surveillance_schema
        from repro.model.relation import XRelation

        paper_env.add_relation(
            XRelation.from_mappings(
                surveillance_schema(),
                [
                    {"name": "Carla", "location": "office", "threshold": 28.0},
                    {"name": "Nicolas", "location": "corridor", "threshold": 30.0},
                ],
            )
        )
        stats = collect_statistics(paper_env)
        informed = CostModel(paper_env, statistics=stats)
        node = (
            scan(paper_env, "contacts")
            .join(scan(paper_env, "surveillance"))
            .node
        )
        # join on 'name': 3 × 2 / max-distinct(name)=3 → 2
        assert informed.cardinality(node) == pytest.approx(2.0)

    def test_statistics_change_optimizer_estimates_not_semantics(
        self, paper_env, stats
    ):
        from repro.algebra import Optimizer, check_equivalence

        query = (
            scan(paper_env, "sensors")
            .invoke("getTemperature")
            .select(col("location").eq("office"))
            .query()
        )
        result = Optimizer(CostModel(paper_env, statistics=stats)).optimize(query)
        assert check_equivalence(query, result.query, paper_env).equivalent
        assert result.cost.total < result.original_cost.total
