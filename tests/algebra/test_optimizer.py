"""Tests for the cost model and the optimizer."""

import pytest

from repro.algebra import (
    CostModel,
    Invocation,
    Optimizer,
    Selection,
    check_equivalence,
    col,
    optimize_heuristic,
    scan,
)


def office_temperature_query(env):
    """The canonical naive plan: invoke everything, then filter."""
    return (
        scan(env, "sensors")
        .invoke("getTemperature")
        .select(col("location").eq("office"))
        .query("office-temps")
    )


class TestCostModel:
    def test_scan_cardinality_from_environment(self, paper_env):
        model = CostModel(paper_env)
        node = scan(paper_env, "sensors").node
        assert model.cardinality(node) == 4.0

    def test_selection_halves(self, paper_env):
        model = CostModel(paper_env)
        node = scan(paper_env, "sensors").select(col("location").eq("office")).node
        assert model.cardinality(node) == 2.0

    def test_invocation_cost_dominates(self, paper_env):
        model = CostModel(paper_env)
        query = office_temperature_query(paper_env)
        cost = model.cost(query)
        assert cost.invocations > cost.tuples_processed
        assert cost.total == cost.invocations + cost.tuples_processed

    def test_service_cost_override(self, paper_env):
        expensive = CostModel(paper_env, service_costs={"getTemperature": 10_000.0})
        cheap = CostModel(paper_env, service_costs={"getTemperature": 1.0})
        query = office_temperature_query(paper_env)
        assert expensive.cost(query).total > cheap.cost(query).total

    def test_join_cardinality(self, paper_env):
        model = CostModel(paper_env)
        node = scan(paper_env, "contacts").join(scan(paper_env, "sensors")).node
        # no common real attribute → Cartesian product 3 × 4
        assert model.cardinality(node) == 12.0


class TestHeuristicOptimizer:
    def test_pushes_selection_below_invocation(self, paper_env):
        optimized = optimize_heuristic(office_temperature_query(paper_env))
        shapes = [type(n).__name__ for n in optimized.root.walk()]
        assert shapes == ["Invocation", "Selection", "Scan"]

    def test_never_touches_active_invocations(self, paper_env):
        query = (
            scan(paper_env, "contacts")
            .assign("text", "Hi")
            .invoke("sendMessage")
            .select(col("name").ne("Carla"))
            .query()
        )
        optimized = optimize_heuristic(query)
        shapes = [type(n).__name__ for n in optimized.root.walk()]
        # The selection stays ABOVE the active invocation.
        assert shapes.index("Selection") < shapes.index("Invocation")

    def test_preserves_equivalence(self, paper):
        env = paper.environment
        query = office_temperature_query(env)
        optimized = optimize_heuristic(query)
        assert check_equivalence(query, optimized, env).equivalent


class TestCostBasedOptimizer:
    def test_finds_cheaper_plan(self, paper_env):
        model = CostModel(paper_env)
        optimizer = Optimizer(model)
        result = optimizer.optimize(office_temperature_query(paper_env))
        assert result.cost.total < result.original_cost.total
        assert result.improvement > 1.0
        assert result.plans_explored > 1

    def test_optimum_is_pushdown_shape(self, paper_env):
        result = Optimizer(CostModel(paper_env)).optimize(
            office_temperature_query(paper_env)
        )
        root = result.query.root
        assert isinstance(root, Invocation)
        assert isinstance(root.children[0], Selection)

    def test_never_worse_than_input(self, paper_env):
        """An already-optimal plan is returned unchanged (same cost)."""
        optimal = (
            scan(paper_env, "sensors")
            .select(col("location").eq("office"))
            .invoke("getTemperature")
            .query()
        )
        result = Optimizer(CostModel(paper_env)).optimize(optimal)
        assert result.cost.total <= result.original_cost.total

    def test_equivalence_preserved(self, paper):
        env = paper.environment
        query = office_temperature_query(env)
        result = Optimizer(CostModel(env)).optimize(query)
        assert check_equivalence(query, result.query, env).equivalent

    def test_plan_budget_respected(self, paper_env):
        optimizer = Optimizer(CostModel(paper_env), plan_budget=2)
        result = optimizer.optimize(office_temperature_query(paper_env))
        assert result.plans_explored <= 2


class TestSubstitutionAwareCosting:
    """ISSUE 10 satellite: invocations of prototypes with no registered
    substitute carry a risk premium, so on an otherwise-tied plan choice
    the optimizer prefers the provider a spare can absorb."""

    @staticmethod
    def _twin_provider_env():
        from repro.model.attributes import Attribute
        from repro.model.binding import BindingPattern
        from repro.model.environment import PervasiveEnvironment
        from repro.model.prototypes import Prototype
        from repro.model.relation import XRelation
        from repro.model.schema import RelationSchema
        from repro.model.types import DataType
        from repro.model.xschema import ExtendedRelationSchema

        env = PervasiveEnvironment()
        prototypes = {}
        for tag in ("a", "b"):
            prototype = Prototype(
                f"readProbe{tag.upper()}",
                RelationSchema(()),
                RelationSchema.of(temperature="REAL"),
            )
            prototypes[tag] = prototype
            env.declare_prototype(prototype)
            schema = ExtendedRelationSchema(
                f"probes_{tag}",
                [
                    Attribute("probe", DataType.SERVICE),
                    Attribute("temperature", DataType.REAL),
                ],
                virtual={"temperature"},
                binding_patterns=[BindingPattern(prototype, "probe")],
            )
            env.add_relation(
                XRelation.from_mappings(
                    schema, [{"probe": f"{tag}{i}"} for i in range(4)]
                )
            )
        return env

    @staticmethod
    def _probe_query(env, tag):
        return (
            scan(env, f"probes_{tag}")
            .invoke(f"readProbe{tag.upper()}", "probe")
            .query(f"probes-{tag}")
        )

    def test_premium_applies_only_without_substitute(self):
        from repro.algebra.cost import UNSUBSTITUTABLE_RISK_PREMIUM

        env = self._twin_provider_env()
        query = self._probe_query(env, "a")
        neutral = CostModel(env)
        aware = CostModel(env, substitutable=frozenset({"readProbeA"}))
        exposed = CostModel(env, substitutable=frozenset())
        assert aware.cost(query).invocations == neutral.cost(query).invocations
        assert exposed.cost(query).invocations == pytest.approx(
            UNSUBSTITUTABLE_RISK_PREMIUM * neutral.cost(query).invocations
        )
        # the premium carries into the steady-state tick model too
        assert (
            exposed.tick_cost(query).invocations
            > aware.tick_cost(query).invocations
        )

    def test_optimizer_breaks_tie_toward_substitutable_provider(self):
        env = self._twin_provider_env()
        risky = self._probe_query(env, "a")
        covered = self._probe_query(env, "b")
        model = CostModel(env, substitutable=frozenset({"readProbeB"}))
        choice = Optimizer(model).choose([risky, covered])
        assert choice is covered
        # without substitution knowledge the plans tie and the first wins
        blind = Optimizer(CostModel(env)).choose([risky, covered])
        assert blind is risky

    def test_choose_requires_candidates(self):
        env = self._twin_provider_env()
        with pytest.raises(ValueError):
            Optimizer(CostModel(env)).choose([])
