"""Tests for Query, QueryResult, actions and the plan builder."""

import pytest

from repro.algebra import (
    Action,
    ActionSet,
    Query,
    QueryResult,
    col,
    relation,
    scan,
)
from repro.model.binding import BindingPattern
from repro.devices.prototypes import SEND_MESSAGE
from repro.model.relation import XRelation
from repro.devices.scenario import contacts_schema


class TestQuery:
    def test_schema_exposed(self, paper_env):
        q = scan(paper_env, "contacts").project("name").query()
        assert q.schema.names == ("name",)

    def test_result_iterable(self, paper_env):
        result = scan(paper_env, "contacts").query().evaluate(paper_env)
        assert isinstance(result, QueryResult)
        assert len(result) == 3
        assert len(list(result)) == 3

    def test_named_query(self, paper_env):
        q = scan(paper_env, "contacts").query("my-query")
        assert q.name == "my-query"
        assert "my-query" in repr(q)

    def test_structural_equality(self, paper_env):
        a = scan(paper_env, "contacts").project("name").query()
        b = scan(paper_env, "contacts").project("name").query()
        c = scan(paper_env, "contacts").project("address").query()
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_render_and_explain(self, paper_env):
        q = scan(paper_env, "contacts").select(col("name").eq("Carla")).query()
        assert q.render() == "select[name = 'Carla'](contacts)"
        assert "σ" in q.explain()

    def test_is_stream(self, paper_env):
        finite = scan(paper_env, "contacts").query()
        assert not finite.is_stream
        stream = scan(paper_env, "contacts").stream("insertion").query()
        assert stream.is_stream

    def test_literal_relation_plan(self, paper_env):
        rel = XRelation.from_mappings(
            contacts_schema(),
            [{"name": "Zoe", "address": "z@x.org", "messenger": "email"}],
        )
        q = relation(rel).project("name").query()
        assert q.evaluate(paper_env).relation.column("name") == ["Zoe"]

    def test_evaluation_instant_recorded(self, paper_env):
        result = scan(paper_env, "contacts").query().evaluate(paper_env, 7)
        assert result.instant == 7


class TestActions:
    def test_action_describe(self):
        bp = BindingPattern(SEND_MESSAGE, "messenger")
        action = Action(bp, "email", ("a@b.c", "Hi"))
        assert action.describe() == "(sendMessage, email, (a@b.c, Hi))"

    def test_action_set_collapses_duplicates(self):
        bp = BindingPattern(SEND_MESSAGE, "messenger")
        a1 = Action(bp, "email", ("a@b.c", "Hi"))
        a2 = Action(bp, "email", ("a@b.c", "Hi"))
        assert len(ActionSet([a1, a2])) == 1

    def test_action_set_describe_is_sorted(self):
        bp = BindingPattern(SEND_MESSAGE, "messenger")
        actions = ActionSet(
            [
                Action(bp, "jabber", ("z@x.org", "Hi")),
                Action(bp, "email", ("a@b.c", "Hi")),
            ]
        )
        lines = actions.describe().splitlines()
        assert lines[0].startswith("(sendMessage, email")

    def test_action_set_equality_is_set_equality(self):
        bp = BindingPattern(SEND_MESSAGE, "messenger")
        a = ActionSet([Action(bp, "email", ("a", "b"))])
        b = frozenset({Action(bp, "email", ("a", "b"))})
        assert a == b


class TestBuilder:
    def test_builder_chains_are_immutable(self, paper_env):
        base = scan(paper_env, "contacts")
        one = base.project("name")
        two = base.project("address")
        assert one.schema.names == ("name",)
        assert two.schema.names == ("address",)

    def test_union_via_builder(self, paper_env):
        a = scan(paper_env, "contacts").select(col("name").eq("Carla"))
        b = scan(paper_env, "contacts").select(col("name").eq("Nicolas"))
        q = a.union(b).query()
        assert len(q.evaluate(paper_env).relation) == 2

    def test_intersect_difference_via_builder(self, paper_env):
        everyone = scan(paper_env, "contacts")
        email_only = scan(paper_env, "contacts").select(
            col("messenger").eq("email")
        )
        inter = everyone.intersect(email_only).query()
        assert len(inter.evaluate(paper_env).relation) == 2
        diff = everyone.difference(email_only).query()
        assert diff.evaluate(paper_env).relation.column("name") == ["Francois"]

    def test_invoke_resolves_ambiguity_with_service_attr(self, paper_env):
        """cameras has two patterns; prototype name disambiguates."""
        builder = scan(paper_env, "cameras").invoke("checkPhoto", "camera")
        assert "quality" in builder.schema.real_names

    def test_memoized_shared_subplan(self, paper_env):
        """A node shared between two branches evaluates once per instant."""
        shared = scan(paper_env, "sensors").invoke("getTemperature")
        q = shared.union(shared).query()
        registry = paper_env.registry
        registry.reset_invocation_count()
        q.evaluate(paper_env)
        assert registry.invocation_count == 4  # not 8: memoized


class TestProfile:
    def test_per_node_cardinalities(self, paper_env):
        from repro.algebra import col, scan

        q = (
            scan(paper_env, "sensors")
            .invoke("getTemperature")
            .select(col("location").eq("office"))
            .query()
        )
        profile = q.profile(paper_env)
        assert [n.output_tuples for n in profile.nodes] == [2, 4, 4]
        assert [n.depth for n in profile.nodes] == [0, 1, 2]
        assert profile.invocations == 4
        assert len(profile.result.relation) == 2

    def test_profile_counts_only_its_own_invocations(self, paper_env):
        from repro.algebra import scan

        warmup = scan(paper_env, "sensors").invoke("getTemperature").query()
        warmup.evaluate(paper_env)  # unrelated invocations beforehand
        profile = scan(paper_env, "sensors").query().profile(paper_env)
        assert profile.invocations == 0

    def test_render_shows_counts(self, paper_env):
        from repro.algebra import scan

        profile = scan(paper_env, "contacts").project("name").query().profile(paper_env)
        text = profile.render()
        assert "[3 tuples]" in text
        assert "service invocations: 0" in text

    def test_profile_shows_pushdown_benefit(self, paper):
        """The profiled invocation counts visualize what the optimizer
        saves (4 calls naive vs 2 pushed-down)."""
        from repro.algebra import col, optimize_heuristic, scan

        env = paper.environment
        naive = (
            scan(env, "sensors")
            .invoke("getTemperature")
            .select(col("location").eq("office"))
            .query()
        )
        assert naive.profile(env).invocations == 4
        assert optimize_heuristic(naive).profile(env).invocations == 2
