"""Tests for selection formulas (Table 3b restrictions + evaluation)."""

import pytest

from repro.algebra.formula import (
    And,
    Comparison,
    Not,
    Or,
    TrueFormula,
    col,
)
from repro.devices.scenario import contacts_schema
from repro.errors import FormulaError, VirtualAttributeError


class TestComparison:
    def test_eq(self):
        f = col("name").eq("Carla")
        assert f.evaluate({"name": "Carla"})
        assert not f.evaluate({"name": "Nicolas"})

    def test_ne(self):
        f = col("name").ne("Carla")
        assert not f.evaluate({"name": "Carla"})

    @pytest.mark.parametrize(
        "builder,value,expected",
        [
            ("lt", 34.9, True),
            ("lt", 35.0, False),
            ("le", 35.0, True),
            ("gt", 35.1, True),
            ("gt", 35.0, False),
            ("ge", 35.0, True),
        ],
    )
    def test_orderings(self, builder, value, expected):
        f = getattr(col("t"), builder)(35.0)
        assert f.evaluate({"t": value}) is expected

    def test_attr_to_attr(self):
        f = col("temperature").gt(col("threshold"))
        assert f.evaluate({"temperature": 30.0, "threshold": 28.0})
        assert not f.evaluate({"temperature": 20.0, "threshold": 28.0})
        assert f.attributes() == {"temperature", "threshold"}

    def test_contains(self):
        f = col("title").contains("Obama")
        assert f.evaluate({"title": "Obama announces a plan"})
        assert not f.evaluate({"title": "markets fall"})

    def test_contains_non_string_raises(self):
        f = col("title").contains("x")
        with pytest.raises(FormulaError):
            f.evaluate({"title": 42})

    def test_unorderable_types_raise(self):
        f = col("x").lt(5)
        with pytest.raises(FormulaError, match="cannot order"):
            f.evaluate({"x": "string"})

    def test_int_float_equality(self):
        assert col("x").eq(35).evaluate({"x": 35.0})

    def test_unknown_operator(self):
        with pytest.raises(FormulaError):
            Comparison("a", "~", 1)

    def test_attr_name_must_be_string(self):
        with pytest.raises(FormulaError):
            Comparison(5, "=", 1, left_is_attr=True)


class TestConnectives:
    def test_and(self):
        f = col("a").eq(1) & col("b").eq(2)
        assert isinstance(f, And)
        assert f.evaluate({"a": 1, "b": 2})
        assert not f.evaluate({"a": 1, "b": 3})

    def test_or(self):
        f = col("a").eq(1) | col("b").eq(2)
        assert isinstance(f, Or)
        assert f.evaluate({"a": 0, "b": 2})
        assert not f.evaluate({"a": 0, "b": 0})

    def test_not(self):
        f = ~col("a").eq(1)
        assert isinstance(f, Not)
        assert f.evaluate({"a": 2})

    def test_true_formula(self):
        assert TrueFormula().evaluate({})
        assert TrueFormula().attributes() == frozenset()

    def test_nested_attributes(self):
        f = (col("a").eq(1) & col("b").eq(2)) | ~col("c").eq(3)
        assert f.attributes() == {"a", "b", "c"}


class TestValidation:
    def test_real_attributes_accepted(self):
        col("name").eq("Carla").validate(contacts_schema())

    def test_virtual_attribute_rejected(self):
        """Selection formulas can only apply to real attributes."""
        with pytest.raises(VirtualAttributeError):
            col("text").eq("hi").validate(contacts_schema())

    def test_unknown_attribute_rejected(self):
        with pytest.raises(FormulaError, match="unknown attribute"):
            col("ghost").eq(1).validate(contacts_schema())


class TestRendering:
    def test_string_quoting(self):
        assert col("name").ne("Carla").render() == "name != 'Carla'"

    def test_quote_escaping(self):
        assert col("name").eq("O'Brien").render() == "name = 'O''Brien'"

    def test_numbers_and_booleans(self):
        assert col("t").gt(35.5).render() == "t > 35.5"
        assert col("sent").eq(True).render() == "sent = true"

    def test_attr_to_attr_render(self):
        assert col("a").lt(col("b")).render() == "a < b"

    def test_connective_render(self):
        f = col("a").eq(1) & ~col("b").eq(2)
        assert f.render() == "(a = 1 and (not b = 2))"

    def test_structural_equality(self):
        assert col("a").eq(1) == col("a").eq(1)
        assert col("a").eq(1) != col("a").eq(2)
