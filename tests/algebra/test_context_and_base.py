"""Tests for the evaluation context and the operator base machinery."""

import pytest

from repro.algebra import EvaluationContext, col, scan
from repro.algebra.actions import Action
from repro.devices.prototypes import SEND_MESSAGE
from repro.model.binding import BindingPattern


class TestEvaluationContext:
    def test_fresh_state_per_context(self, paper_env):
        node = scan(paper_env, "contacts").node
        ctx1 = EvaluationContext(paper_env)
        ctx2 = EvaluationContext(paper_env)
        ctx1.state(node)["x"] = 1
        assert "x" not in ctx2.state(node)

    def test_at_instant_shares_state_not_actions(self, paper_env):
        node = scan(paper_env, "contacts").node
        ctx = EvaluationContext(paper_env, 1)
        ctx.state(node)["x"] = 1
        bp = BindingPattern(SEND_MESSAGE, "messenger")
        ctx.record_action(Action(bp, "email", ("a", "b")))
        later = ctx.at_instant(2)
        assert later.instant == 2
        assert later.state(node)["x"] == 1
        assert later.actions == []
        assert len(ctx.action_set) == 1

    def test_at_instant_propagates_continuous_flag(self, paper_env):
        ctx = EvaluationContext(paper_env, 0, {}, continuous=True)
        assert ctx.at_instant(5).continuous

    def test_action_set_collapses_duplicates(self, paper_env):
        ctx = EvaluationContext(paper_env)
        bp = BindingPattern(SEND_MESSAGE, "messenger")
        ctx.record_action(Action(bp, "email", ("a", "b")))
        ctx.record_action(Action(bp, "email", ("a", "b")))
        assert len(ctx.actions) == 2
        assert len(ctx.action_set) == 1


class TestOperatorBase:
    def test_evaluation_memoized_per_instant(self, paper_env):
        registry = paper_env.registry
        node = scan(paper_env, "sensors").invoke("getTemperature").node
        ctx = EvaluationContext(paper_env, 1)
        registry.reset_invocation_count()
        node.evaluate(ctx)
        node.evaluate(ctx)
        assert registry.invocation_count == 4  # second call served from memo

    def test_memo_invalidated_on_new_instant(self, paper_env):
        registry = paper_env.registry
        node = scan(paper_env, "sensors").invoke("getTemperature").node
        states: dict = {}
        ctx = EvaluationContext(paper_env, 1, states)
        registry.reset_invocation_count()
        node.evaluate(ctx)
        node.evaluate(ctx.at_instant(2))
        # cache keyed on full tuples: same sensors, but Section 4.2 cache
        # prevents re-invocation — 4 calls total, memo plus cache verified
        assert registry.invocation_count == 4

    def test_default_deltas_via_diffing(self, paper_env):
        """Nodes without journals diff consecutive instantaneous results."""
        from repro.continuous.xdrelation import XDRelation
        from repro.devices.scenario import contacts_schema

        xd = XDRelation(contacts_schema().with_name("people"))
        paper_env.add_relation(xd, "people")
        xd.insert_mappings(
            [{"name": "A", "address": "a@x", "messenger": "email"}], 0
        )
        node = (
            scan(paper_env, "people").select(col("messenger").eq("email")).node
        )
        states: dict = {}
        ctx = EvaluationContext(paper_env, 0, states)
        assert len(node.inserted(ctx)) == 1  # first sight: everything new
        xd.insert_mappings(
            [{"name": "B", "address": "b@x", "messenger": "email"}], 1
        )
        ctx1 = ctx.at_instant(1)
        inserted = node.inserted(ctx1)
        assert len(inserted) == 1
        assert next(iter(inserted))[0] == "B"
        xd.delete_mappings(
            [{"name": "A", "address": "a@x", "messenger": "email"}], 2
        )
        ctx2 = ctx1.at_instant(2)
        deleted = node.deleted(ctx2)
        assert len(deleted) == 1
        assert next(iter(deleted))[0] == "A"

    def test_walk_and_tree(self, paper_env):
        node = (
            scan(paper_env, "contacts")
            .select(col("name").eq("Carla"))
            .project("name")
            .node
        )
        kinds = [type(n).__name__ for n in node.walk()]
        assert kinds == ["Projection", "Selection", "Scan"]
        tree = node.tree()
        assert tree.splitlines()[2].startswith("    scan")

    def test_structural_equality_ignores_uid(self, paper_env):
        a = scan(paper_env, "contacts").select(col("name").eq("Carla")).node
        b = scan(paper_env, "contacts").select(col("name").eq("Carla")).node
        assert a.uid != b.uid
        assert a == b
        assert hash(a) == hash(b)

    def test_one_shot_equals_first_continuous_evaluation(self, paper_env):
        """For a static environment, one-shot at τ and the first continuous
        evaluation at τ coincide (relation and action set)."""
        from repro.continuous.continuous_query import ContinuousQuery

        q = (
            scan(paper_env, "sensors")
            .invoke("getTemperature")
            .select(col("location").eq("office"))
            .query()
        )
        one_shot = q.evaluate(paper_env, 3)
        continuous = ContinuousQuery(q, paper_env).evaluate_at(3)
        assert one_shot.relation == continuous.relation
        assert one_shot.actions == continuous.actions
