"""Tests for asynchronous invocations (Section 5.1: "service invocations
are handled asynchronously by the invocation operator")."""

import pytest

from repro.algebra import col, scan
from repro.continuous.continuous_query import ContinuousQuery
from repro.continuous.xdrelation import XDRelation
from repro.devices.scenario import contacts_schema
from repro.errors import InvalidOperatorError


@pytest.fixture
def dynamic_env(paper_env):
    rows = paper_env.instantaneous("contacts", 0).to_mappings()
    paper_env.remove_relation("contacts")
    xd = XDRelation(contacts_schema())
    xd.insert_mappings(rows, instant=0)
    paper_env.add_relation(xd)
    return paper_env


def delayed_send(env, delay):
    return (
        scan(env, "contacts")
        .assign("text", "Hi")
        .invoke("sendMessage", delay=delay)
        .query()
    )


class TestConstruction:
    def test_negative_delay_rejected(self, paper_env):
        with pytest.raises(InvalidOperatorError, match="non-negative"):
            scan(paper_env, "contacts").assign("text", "x").invoke(
                "sendMessage", delay=-1
            )

    def test_delay_part_of_identity(self, paper_env):
        sync = scan(paper_env, "sensors").invoke("getTemperature").node
        slow = scan(paper_env, "sensors").invoke("getTemperature", delay=2).node
        assert sync != slow

    def test_sal_round_trip_with_delay(self, paper_env):
        from repro.lang import parse_query, to_sal

        q = scan(paper_env, "sensors").invoke("getTemperature", delay=3).query()
        assert "invoke[getTemperature, sensor, 3]" in to_sal(q)
        assert parse_query(to_sal(q), paper_env).root == q.root


class TestOneShotIsSynchronous:
    def test_delay_ignored_in_one_shot(self, paper):
        """One-shot evaluation occurs at one instant (Section 3.2): the
        delay cannot apply."""
        env = paper.environment
        result = delayed_send(env, delay=5).evaluate(env)
        assert len(result.relation) == 3
        assert len(paper.outbox) == 3


class TestContinuousAsynchrony:
    def test_results_arrive_after_delay(self, dynamic_env):
        query = delayed_send(dynamic_env, delay=2)
        cq = ContinuousQuery(query, dynamic_env)
        assert len(cq.evaluate_at(1).relation) == 0  # requests in flight
        assert len(cq.evaluate_at(2).relation) == 0
        assert len(cq.evaluate_at(3).relation) == 3  # responses landed

    def test_actions_happen_at_completion_instant(self, dynamic_env):
        query = delayed_send(dynamic_env, delay=2)
        cq = ContinuousQuery(query, dynamic_env)
        cq.evaluate_at(1)
        assert len(cq.actions) == 0
        cq.evaluate_at(2)
        assert len(cq.actions) == 0
        cq.evaluate_at(3)
        assert len(cq.actions) == 3

    def test_new_tuple_gets_its_own_deadline(self, dynamic_env):
        query = delayed_send(dynamic_env, delay=2)
        cq = ContinuousQuery(query, dynamic_env)
        for instant in range(1, 4):
            cq.evaluate_at(instant)
        dynamic_env.relation("contacts").insert_mappings(
            [{"name": "Zoe", "address": "zoe@x.org", "messenger": "jabber"}],
            instant=4,
        )
        assert len(cq.evaluate_at(4).relation) == 3  # Zoe still in flight
        assert len(cq.evaluate_at(5).relation) == 3
        assert len(cq.evaluate_at(6).relation) == 4

    def test_tuple_deleted_while_in_flight_never_invoked(self, dynamic_env):
        registry = dynamic_env.registry
        query = delayed_send(dynamic_env, delay=3)
        cq = ContinuousQuery(query, dynamic_env)
        cq.evaluate_at(1)
        row = {"name": "Carla", "address": "carla@elysee.fr", "messenger": "email"}
        dynamic_env.relation("contacts").delete_mappings([row], instant=2)
        registry.reset_invocation_count()
        for instant in range(2, 6):
            cq.evaluate_at(instant)
        # Only the two remaining contacts were ever invoked.
        assert registry.invocation_count == 2
        assert len(cq.actions) == 2

    def test_delay_zero_is_synchronous(self, dynamic_env):
        query = delayed_send(dynamic_env, delay=0)
        cq = ContinuousQuery(query, dynamic_env)
        assert len(cq.evaluate_at(1).relation) == 3

    def test_results_cached_after_arrival(self, dynamic_env):
        registry = dynamic_env.registry
        query = delayed_send(dynamic_env, delay=1)
        cq = ContinuousQuery(query, dynamic_env)
        cq.evaluate_at(1)
        registry.reset_invocation_count()
        cq.evaluate_at(2)  # responses arrive: 3 invocations
        cq.evaluate_at(3)  # cached
        cq.evaluate_at(4)
        assert registry.invocation_count == 3
