"""Tests for asynchronous invocations (Section 5.1: "service invocations
are handled asynchronously by the invocation operator")."""

import pytest

from repro.algebra import col, scan
from repro.continuous.continuous_query import ContinuousQuery
from repro.continuous.xdrelation import XDRelation
from repro.devices.scenario import contacts_schema
from repro.errors import InvalidOperatorError


@pytest.fixture
def dynamic_env(paper_env):
    rows = paper_env.instantaneous("contacts", 0).to_mappings()
    paper_env.remove_relation("contacts")
    xd = XDRelation(contacts_schema())
    xd.insert_mappings(rows, instant=0)
    paper_env.add_relation(xd)
    return paper_env


def delayed_send(env, delay):
    return (
        scan(env, "contacts")
        .assign("text", "Hi")
        .invoke("sendMessage", delay=delay)
        .query()
    )


class TestConstruction:
    def test_negative_delay_rejected(self, paper_env):
        with pytest.raises(InvalidOperatorError, match="non-negative"):
            scan(paper_env, "contacts").assign("text", "x").invoke(
                "sendMessage", delay=-1
            )

    def test_delay_part_of_identity(self, paper_env):
        sync = scan(paper_env, "sensors").invoke("getTemperature").node
        slow = scan(paper_env, "sensors").invoke("getTemperature", delay=2).node
        assert sync != slow

    def test_sal_round_trip_with_delay(self, paper_env):
        from repro.lang import parse_query, to_sal

        q = scan(paper_env, "sensors").invoke("getTemperature", delay=3).query()
        assert "invoke[getTemperature, sensor, 3]" in to_sal(q)
        assert parse_query(to_sal(q), paper_env).root == q.root


class TestOneShotIsSynchronous:
    def test_delay_ignored_in_one_shot(self, paper):
        """One-shot evaluation occurs at one instant (Section 3.2): the
        delay cannot apply."""
        env = paper.environment
        result = delayed_send(env, delay=5).evaluate(env)
        assert len(result.relation) == 3
        assert len(paper.outbox) == 3


class TestContinuousAsynchrony:
    def test_results_arrive_after_delay(self, dynamic_env):
        query = delayed_send(dynamic_env, delay=2)
        cq = ContinuousQuery(query, dynamic_env)
        assert len(cq.evaluate_at(1).relation) == 0  # requests in flight
        assert len(cq.evaluate_at(2).relation) == 0
        assert len(cq.evaluate_at(3).relation) == 3  # responses landed

    def test_actions_happen_at_completion_instant(self, dynamic_env):
        query = delayed_send(dynamic_env, delay=2)
        cq = ContinuousQuery(query, dynamic_env)
        cq.evaluate_at(1)
        assert len(cq.actions) == 0
        cq.evaluate_at(2)
        assert len(cq.actions) == 0
        cq.evaluate_at(3)
        assert len(cq.actions) == 3

    def test_new_tuple_gets_its_own_deadline(self, dynamic_env):
        query = delayed_send(dynamic_env, delay=2)
        cq = ContinuousQuery(query, dynamic_env)
        for instant in range(1, 4):
            cq.evaluate_at(instant)
        dynamic_env.relation("contacts").insert_mappings(
            [{"name": "Zoe", "address": "zoe@x.org", "messenger": "jabber"}],
            instant=4,
        )
        assert len(cq.evaluate_at(4).relation) == 3  # Zoe still in flight
        assert len(cq.evaluate_at(5).relation) == 3
        assert len(cq.evaluate_at(6).relation) == 4

    def test_tuple_deleted_while_in_flight_never_invoked(self, dynamic_env):
        registry = dynamic_env.registry
        query = delayed_send(dynamic_env, delay=3)
        cq = ContinuousQuery(query, dynamic_env)
        cq.evaluate_at(1)
        row = {"name": "Carla", "address": "carla@elysee.fr", "messenger": "email"}
        dynamic_env.relation("contacts").delete_mappings([row], instant=2)
        registry.reset_invocation_count()
        for instant in range(2, 6):
            cq.evaluate_at(instant)
        # Only the two remaining contacts were ever invoked.
        assert registry.invocation_count == 2
        assert len(cq.actions) == 2

    def test_delay_zero_is_synchronous(self, dynamic_env):
        query = delayed_send(dynamic_env, delay=0)
        cq = ContinuousQuery(query, dynamic_env)
        assert len(cq.evaluate_at(1).relation) == 3

    def test_results_cached_after_arrival(self, dynamic_env):
        registry = dynamic_env.registry
        query = delayed_send(dynamic_env, delay=1)
        cq = ContinuousQuery(query, dynamic_env)
        cq.evaluate_at(1)
        registry.reset_invocation_count()
        cq.evaluate_at(2)  # responses arrive: 3 invocations
        cq.evaluate_at(3)  # cached
        cq.evaluate_at(4)
        assert registry.invocation_count == 3


class TestAsynchronousSkip:
    """``on_error='skip'`` with ``delay > 0``: a failed due invocation is
    rescheduled with the *full* delay, not retried every instant."""

    RECOVERY_INSTANT = 9

    def flaky_gateway(self, env):
        """A sendMessage service that fails until :attr:`RECOVERY_INSTANT`,
        recording the instant of every attempt."""
        from repro.devices.prototypes import SEND_MESSAGE
        from repro.model.services import Service

        attempts = []

        def send_message(inputs, instant):
            attempts.append(instant)
            if instant < self.RECOVERY_INSTANT:
                raise RuntimeError("gateway down")
            return [{"sent": True}]

        env.register_service(
            Service("flaky", {SEND_MESSAGE: send_message}, description="flaky")
        )
        return attempts

    def query(self, env):
        return (
            scan(env, "contacts")
            .select(col("name").eq("Zoe"))
            .assign("text", "Hi")
            .invoke("sendMessage", on_error="skip", delay=2)
            .query()
        )

    @pytest.mark.parametrize("engine", ["naive", "incremental"])
    def test_retry_waits_the_full_delay(self, dynamic_env, engine):
        attempts = self.flaky_gateway(dynamic_env)
        dynamic_env.relation("contacts").insert_mappings(
            [{"name": "Zoe", "address": "zoe@x.org", "messenger": "flaky"}],
            instant=0,
        )
        cq = ContinuousQuery(self.query(dynamic_env), dynamic_env, engine=engine)
        sizes = [len(cq.evaluate_at(instant).relation) for instant in range(1, 12)]
        # First attempt when the delay elapses (instant 3); each failure
        # reschedules with the full delay from the *next* instant: 3 → 6 → 9.
        assert attempts == [3, 6, 9]
        # The tuple only materializes once an attempt succeeds...
        assert sizes == [0] * 8 + [1, 1, 1]
        # ...and exactly one action is recorded, at the success instant.
        assert len(cq.action_log) == 1
        assert cq.actions and all(
            a.binding_pattern.prototype.name == "sendMessage" for a in cq.actions
        )
