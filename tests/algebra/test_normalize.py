"""Tests for plan normalization and syntactic equivalence."""

import pytest

from repro.algebra import col, scan
from repro.algebra.formula import And, Or
from repro.algebra.normalize import (
    normalize,
    normalize_formula,
    syntactically_equivalent,
)


class TestNormalizeFormula:
    def test_conjunction_sorted(self):
        a, b = col("x").eq(1), col("a").eq(2)
        assert normalize_formula(And(a, b)) == normalize_formula(And(b, a))

    def test_conjunction_flattened(self):
        a, b, c = col("a").eq(1), col("b").eq(2), col("c").eq(3)
        nested_left = And(And(a, b), c)
        nested_right = And(a, And(b, c))
        assert normalize_formula(nested_left) == normalize_formula(nested_right)

    def test_idempotent_terms_deduplicated(self):
        a = col("a").eq(1)
        assert normalize_formula(And(a, a)) == a

    def test_disjunction_same_treatment(self):
        a, b = col("x").eq(1), col("a").eq(2)
        assert normalize_formula(Or(a, b)) == normalize_formula(Or(b, a))

    def test_negation_recurses(self):
        a, b = col("x").eq(1), col("a").eq(2)
        assert normalize_formula(~And(a, b)) == normalize_formula(~And(b, a))

    def test_and_or_not_mixed(self):
        comparison = col("a").eq(1)
        assert normalize_formula(comparison) == comparison


class TestNormalizePlans:
    def test_stacked_selections_merge_and_sort(self, paper_env):
        one = (
            scan(paper_env, "contacts")
            .select(col("name").ne("Carla"))
            .select(col("messenger").eq("email"))
            .query()
        )
        two = (
            scan(paper_env, "contacts")
            .select(col("messenger").eq("email"))
            .select(col("name").ne("Carla"))
            .query()
        )
        assert one.root != two.root
        assert syntactically_equivalent(one, two)

    def test_pushdown_normalizes_invocation_position(self, paper_env):
        late_filter = (
            scan(paper_env, "sensors")
            .invoke("getTemperature")
            .select(col("location").eq("office"))
            .query()
        )
        early_filter = (
            scan(paper_env, "sensors")
            .select(col("location").eq("office"))
            .invoke("getTemperature")
            .query()
        )
        assert syntactically_equivalent(late_filter, early_filter)

    def test_active_invocations_stay_distinct(self, paper_env):
        """Q1 and Q1' must NOT be syntactically equivalent."""
        from repro.algebra import Query, Selection

        q1 = (
            scan(paper_env, "contacts")
            .select(col("name").ne("Carla"))
            .assign("text", "x")
            .invoke("sendMessage")
            .query()
        )
        q1_prime = Query(
            Selection(
                scan(paper_env, "contacts")
                .assign("text", "x")
                .invoke("sendMessage")
                .node,
                col("name").ne("Carla"),
            )
        )
        assert not syntactically_equivalent(q1, q1_prime)

    def test_projection_cascade_collapses(self, paper_env):
        cascaded = (
            scan(paper_env, "contacts")
            .project("name", "address", "messenger")
            .project("name")
            .query()
        )
        direct = scan(paper_env, "contacts").project("name").query()
        assert syntactically_equivalent(cascaded, direct)

    def test_query_name_preserved(self, paper_env):
        q = scan(paper_env, "contacts").query("named")
        assert normalize(q).name == "named"

    def test_normalization_preserves_def9_equivalence(self, paper):
        """normalize(q) ≡ q empirically (Definition 9)."""
        from repro.algebra import Query, check_equivalence

        env = paper.environment
        q = (
            scan(env, "sensors")
            .invoke("getTemperature")
            .select(col("location").eq("office") & col("sensor").ne("sensor07"))
            .project("sensor", "location", "temperature")
            .query()
        )
        normalized = normalize(q)
        assert isinstance(normalized, Query)
        assert check_equivalence(q, normalized, env).equivalent

    def test_different_queries_not_equivalent(self, paper_env):
        a = scan(paper_env, "contacts").select(col("name").eq("Carla")).query()
        b = scan(paper_env, "contacts").select(col("name").eq("Nicolas")).query()
        assert not syntactically_equivalent(a, b)
