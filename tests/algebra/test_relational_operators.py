"""Tests for the relational operators over X-Relations (Table 3a–3d)."""

import pytest

from repro.algebra import (
    BaseRelation,
    Difference,
    Intersection,
    NaturalJoin,
    Projection,
    Renaming,
    Scan,
    Selection,
    Union,
    col,
    scan,
)
from repro.devices.scenario import contacts_schema, surveillance_schema
from repro.errors import (
    InvalidOperatorError,
    UnknownAttributeError,
    VirtualAttributeError,
)
from repro.model.attributes import Attribute
from repro.model.relation import XRelation
from repro.model.types import DataType
from repro.model.xschema import ExtendedRelationSchema


class TestProjection:
    def test_tuples_projected_onto_real_kept(self, paper_env):
        q = scan(paper_env, "contacts").project("name", "messenger").query()
        result = q.evaluate(paper_env).relation
        assert sorted(result.tuples) == [
            ("Carla", "email"),
            ("Francois", "jabber"),
            ("Nicolas", "email"),
        ]

    def test_projection_onto_virtuals_only_keeps_empty_tuples(self, paper_env):
        """Projecting onto only virtual attrs yields 0-ary tuples: the
        relation collapses to at most one (empty) tuple."""
        q = scan(paper_env, "contacts").project("text", "sent").query()
        result = q.evaluate(paper_env).relation
        assert len(result) == 1
        assert () in result

    def test_duplicates_collapse(self, paper_env):
        q = scan(paper_env, "contacts").project("messenger").query()
        result = q.evaluate(paper_env).relation
        assert sorted(result.tuples) == [("email",), ("jabber",)]

    def test_empty_names_rejected(self, paper_env):
        with pytest.raises(InvalidOperatorError):
            scan(paper_env, "contacts").project()

    def test_duplicate_names_rejected(self, paper_env):
        with pytest.raises(InvalidOperatorError):
            scan(paper_env, "contacts").project("name", "name")

    def test_unknown_name_rejected(self, paper_env):
        with pytest.raises(UnknownAttributeError):
            scan(paper_env, "contacts").project("ghost")


class TestSelection:
    def test_filters(self, paper_env):
        q = scan(paper_env, "contacts").select(col("messenger").eq("email")).query()
        result = q.evaluate(paper_env).relation
        assert result.column("name") == ["Carla", "Nicolas"]

    def test_schema_unchanged(self, paper_env):
        node = scan(paper_env, "contacts").select(col("name").eq("Carla")).node
        assert node.schema.compatible(paper_env.schema("contacts"))

    def test_virtual_attribute_in_formula_rejected(self, paper_env):
        with pytest.raises(VirtualAttributeError):
            scan(paper_env, "contacts").select(col("text").eq("x"))

    def test_empty_result(self, paper_env):
        q = scan(paper_env, "contacts").select(col("name").eq("Ghost")).query()
        assert len(q.evaluate(paper_env).relation) == 0

    def test_conjunction(self, paper_env):
        q = (
            scan(paper_env, "contacts")
            .select(col("messenger").eq("email") & col("name").ne("Carla"))
            .query()
        )
        assert q.evaluate(paper_env).relation.column("name") == ["Nicolas"]


class TestRenaming:
    def test_values_preserved(self, paper_env):
        q = scan(paper_env, "contacts").rename("name", "who").query()
        result = q.evaluate(paper_env).relation
        assert result.column("who") == ["Carla", "Francois", "Nicolas"]

    def test_can_select_on_new_name(self, paper_env):
        q = (
            scan(paper_env, "contacts")
            .rename("name", "who")
            .select(col("who").eq("Carla"))
            .query()
        )
        assert len(q.evaluate(paper_env).relation) == 1


class TestSetOperators:
    def _rel(self, *names):
        return XRelation.from_mappings(
            contacts_schema(),
            [
                {"name": n, "address": f"{n.lower()}@x.org", "messenger": "email"}
                for n in names
            ],
        )

    def test_union(self):
        q = Union(BaseRelation(self._rel("A", "B")), BaseRelation(self._rel("B", "C")))
        from repro.algebra import Query
        from repro.model.environment import PervasiveEnvironment

        result = Query(q).evaluate(PervasiveEnvironment()).relation
        assert result.column("name") == ["A", "B", "C"]

    def test_intersection(self):
        from repro.algebra import Query
        from repro.model.environment import PervasiveEnvironment

        q = Intersection(
            BaseRelation(self._rel("A", "B")), BaseRelation(self._rel("B", "C"))
        )
        assert Query(q).evaluate(PervasiveEnvironment()).relation.column("name") == ["B"]

    def test_difference(self):
        from repro.algebra import Query
        from repro.model.environment import PervasiveEnvironment

        q = Difference(
            BaseRelation(self._rel("A", "B")), BaseRelation(self._rel("B", "C"))
        )
        assert Query(q).evaluate(PervasiveEnvironment()).relation.column("name") == ["A"]

    def test_incompatible_schemas_rejected(self):
        other = XRelation(surveillance_schema())
        with pytest.raises(InvalidOperatorError, match="not compatible"):
            Union(BaseRelation(self._rel("A")), BaseRelation(other))

    def test_result_schema_keeps_binding_patterns(self):
        node = Union(BaseRelation(self._rel("A")), BaseRelation(self._rel("B")))
        assert len(node.schema.binding_patterns) == 1


class TestNaturalJoin:
    def test_join_on_common_real_attribute(self, paper_env):
        """contacts ⋈ surveillance-like relation on name."""
        assignments = XRelation.from_mappings(
            ExtendedRelationSchema(
                "assignments",
                [
                    Attribute("name", DataType.STRING),
                    Attribute("location", DataType.STRING),
                ],
            ),
            [
                {"name": "Carla", "location": "office"},
                {"name": "Nobody", "location": "basement"},
            ],
        )
        q = scan(paper_env, "contacts").join(BaseRelation(assignments)).query()
        result = q.evaluate(paper_env).relation
        assert len(result) == 1
        (row,) = result.to_mappings()
        assert row["name"] == "Carla"
        assert row["location"] == "office"

    def test_no_common_attributes_is_product(self, paper_env):
        locations = XRelation.from_mappings(
            ExtendedRelationSchema(
                "locations", [Attribute("location", DataType.STRING)]
            ),
            [{"location": "office"}, {"location": "roof"}],
        )
        q = scan(paper_env, "contacts").join(BaseRelation(locations)).query()
        assert len(q.evaluate(paper_env).relation) == 6  # 3 × 2

    def test_join_attribute_virtual_on_one_side_is_product(self, paper_env):
        """Only attributes real in BOTH operands imply a join predicate;
        'text' (virtual in contacts, real here) does not filter."""
        texts = XRelation.from_mappings(
            ExtendedRelationSchema("texts", [Attribute("text", DataType.STRING)]),
            [{"text": "Hello"}, {"text": "Goodbye"}],
        )
        q = scan(paper_env, "contacts").join(BaseRelation(texts)).query()
        result = q.evaluate(paper_env).relation
        assert len(result) == 6  # Cartesian product at the tuple level
        # ... but 'text' is now REAL in the result (implicit realization)
        assert "text" in result.schema.real_names
        assert set(result.column("text")) == {"Hello", "Goodbye"}

    def test_implicit_realization_drops_binding_pattern_output(self, paper_env):
        sents = XRelation.from_mappings(
            ExtendedRelationSchema("sents", [Attribute("sent", DataType.BOOLEAN)]),
            [{"sent": True}],
        )
        node = scan(paper_env, "contacts").join(BaseRelation(sents)).node
        assert node.schema.binding_patterns == ()

    def test_join_is_commutative_on_tuples(self, paper_env):
        surveillance = XRelation.from_mappings(
            surveillance_schema(), [{"name": "Carla", "location": "office", "threshold": 28.0}]
        )
        left = scan(paper_env, "contacts").join(BaseRelation(surveillance)).query()
        right_first = (
            scan(paper_env, "contacts").node
        )
        from repro.algebra import Query

        right = Query(NaturalJoin(BaseRelation(surveillance), right_first))
        r1 = left.evaluate(paper_env).relation
        r2 = right.evaluate(paper_env).relation
        assert {frozenset(m.items()) for m in r1.to_mappings()} == {
            frozenset(m.items()) for m in r2.to_mappings()
        }


class TestScan:
    def test_scan_reads_current_state(self, paper_env):
        q = scan(paper_env, "contacts").query()
        assert len(q.evaluate(paper_env).relation) == 3

    def test_scan_unknown_relation(self, paper_env):
        from repro.errors import UnknownRelationError

        with pytest.raises(UnknownRelationError):
            scan(paper_env, "ghost")

    def test_scan_schema_change_detected(self, paper_env):
        q = scan(paper_env, "contacts").query()
        paper_env.remove_relation("contacts")
        paper_env.add_relation(
            XRelation(surveillance_schema()), name="contacts"
        )
        with pytest.raises(InvalidOperatorError, match="changed schema"):
            q.evaluate(paper_env)

    def test_scan_is_leaf(self, paper_env):
        node = scan(paper_env, "contacts").node
        assert node.children == ()
        with pytest.raises(InvalidOperatorError):
            node.with_children([node])
