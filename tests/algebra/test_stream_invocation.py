"""Tests for the streaming-binding-pattern operator β∞ (Section 7's
future work, implemented as an extension)."""

import pytest

from repro.algebra import EvaluationContext, StreamingInvocation, col, scan
from repro.continuous.continuous_query import ContinuousQuery
from repro.devices.scenario import sensors_schema
from repro.errors import InvalidOperatorError
from repro.model.relation import XRelation


@pytest.fixture
def timed_env(paper_env):
    """The paper env with a timestamped sensors table."""
    rows = paper_env.instantaneous("sensors", 0).to_mappings()
    paper_env.remove_relation("sensors")
    paper_env.add_relation(
        XRelation.from_mappings(sensors_schema(with_timestamp=True), rows)
    )
    return paper_env


class TestConstruction:
    def test_output_is_stream(self, timed_env):
        node = scan(timed_env, "sensors").invoke_stream("getTemperature").node
        assert node.is_stream
        assert "temperature" in node.schema.real_names

    def test_timestamp_attribute_realized(self, timed_env):
        node = (
            scan(timed_env, "sensors")
            .invoke_stream("getTemperature", timestamp="at")
            .node
        )
        assert "at" in node.schema.real_names

    def test_active_patterns_rejected(self, timed_env):
        """Streaming an active pattern would repeat its side effect at
        every instant — forbidden by construction."""
        builder = scan(timed_env, "contacts").assign("text", "Hi")
        bp = builder.schema.binding_pattern("sendMessage")
        with pytest.raises(InvalidOperatorError, match="active"):
            StreamingInvocation(builder.node, bp)

    def test_inputs_must_be_real(self, timed_env):
        bp = timed_env.schema("cameras").binding_pattern("takePhoto")
        with pytest.raises(InvalidOperatorError, match="still virtual"):
            StreamingInvocation(scan(timed_env, "cameras").node, bp)

    def test_stream_operand_rejected(self, timed_env):
        stream_node = scan(timed_env, "sensors").invoke_stream("getTemperature")
        bp = timed_env.schema("sensors").binding_pattern("getTemperature")
        with pytest.raises(InvalidOperatorError, match="finite"):
            StreamingInvocation(stream_node.node, bp)

    def test_timestamp_must_be_virtual(self, timed_env):
        bp = timed_env.schema("sensors").binding_pattern("getTemperature")
        with pytest.raises(InvalidOperatorError, match="must be virtual"):
            StreamingInvocation(
                scan(timed_env, "sensors").node, bp, timestamp_attribute="location"
            )

    def test_timestamp_cannot_be_bp_output(self, timed_env):
        bp = timed_env.schema("sensors").binding_pattern("getTemperature")
        with pytest.raises(InvalidOperatorError, match="cannot be an output"):
            StreamingInvocation(
                scan(timed_env, "sensors").node, bp, timestamp_attribute="temperature"
            )


class TestEmission:
    def test_emits_one_reading_per_sensor_per_instant(self, timed_env):
        q = (
            scan(timed_env, "sensors")
            .invoke_stream("getTemperature", timestamp="at")
            .window(1)
            .query()
        )
        result = q.evaluate(timed_env, instant=3).relation
        assert len(result) == 4
        assert set(result.column("at")) == {3}

    def test_fresh_readings_each_instant(self, timed_env):
        q = (
            scan(timed_env, "sensors")
            .invoke_stream("getTemperature", timestamp="at")
            .window(1)
            .query()
        )
        cq = ContinuousQuery(q, timed_env)
        r1 = cq.evaluate_at(1).relation
        r2 = cq.evaluate_at(2).relation
        assert r1 != r2  # new instants, new readings (timestamps differ)
        assert len(r2) == 4

    def test_window_accumulates_emissions(self, timed_env):
        q = (
            scan(timed_env, "sensors")
            .invoke_stream("getTemperature", timestamp="at")
            .window(3)
            .query()
        )
        cq = ContinuousQuery(q, timed_env)
        for instant in range(1, 5):
            result = cq.evaluate_at(instant).relation
        assert len(result) == 12  # 3 instants x 4 sensors

    def test_no_caching_unlike_plain_invocation(self, timed_env):
        """β∞ re-invokes every instant (it is a source, not a function)."""
        q = (
            scan(timed_env, "sensors")
            .invoke_stream("getTemperature", timestamp="at")
            .window(1)
            .query()
        )
        cq = ContinuousQuery(q, timed_env)
        registry = timed_env.registry
        registry.reset_invocation_count()
        cq.evaluate_at(1)
        cq.evaluate_at(2)
        cq.evaluate_at(3)
        assert registry.invocation_count == 12

    def test_vanished_service_skipped(self, timed_env):
        timed_env.unregister_service("sensor22")
        q = (
            scan(timed_env, "sensors")
            .invoke_stream("getTemperature", timestamp="at")
            .window(1)
            .query()
        )
        result = q.evaluate(timed_env, 1).relation
        assert len(result) == 3

    def test_downstream_selection_on_readings(self, timed_env):
        """The temperatures-stream idiom: W[1](β∞) then filter/join."""
        q = (
            scan(timed_env, "sensors")
            .invoke_stream("getTemperature", timestamp="at")
            .window(1)
            .select(col("location").eq("office"))
            .project("sensor", "temperature", "at")
            .query()
        )
        result = q.evaluate(timed_env, 5).relation
        assert len(result) == 2  # sensor06, sensor07


class TestLanguageIntegration:
    def test_sal_round_trip(self, timed_env):
        from repro.lang import parse_query, to_sal

        q = (
            scan(timed_env, "sensors")
            .invoke_stream("getTemperature", timestamp="at")
            .window(1)
            .query()
        )
        assert parse_query(to_sal(q), timed_env).root == q.root

    def test_equality_and_signature(self, timed_env):
        a = scan(timed_env, "sensors").invoke_stream("getTemperature").node
        b = scan(timed_env, "sensors").invoke_stream("getTemperature").node
        c = scan(timed_env, "sensors").invoke_stream(
            "getTemperature", timestamp="at"
        ).node
        assert a == b
        assert a != c
