"""Tests for the aggregation extension operator."""

import pytest

from repro.algebra import AggregateSpec, col, scan
from repro.errors import InvalidOperatorError, VirtualAttributeError
from repro.model.types import DataType


class TestAggregate:
    def test_mean_temperature_per_location(self, paper_env):
        """The motivating example: mean temperature for a location."""
        q = (
            scan(paper_env, "sensors")
            .invoke("getTemperature")
            .aggregate(["location"], ("avg", "temperature", "mean_temp"))
            .query()
        )
        result = q.evaluate(paper_env).relation
        rows = {m["location"]: m["mean_temp"] for m in result.to_mappings()}
        assert set(rows) == {"corridor", "office", "roof"}
        assert all(isinstance(v, float) for v in rows.values())

    def test_count_star(self, paper_env):
        q = (
            scan(paper_env, "contacts")
            .aggregate(["messenger"], ("count", None, "n"))
            .query()
        )
        rows = {
            m["messenger"]: m["n"]
            for m in q.evaluate(paper_env).relation.to_mappings()
        }
        assert rows == {"email": 2, "jabber": 1}

    def test_global_aggregate_no_groups(self, paper_env):
        q = (
            scan(paper_env, "sensors")
            .invoke("getTemperature")
            .aggregate([], ("max", "temperature", "hottest"), ("count", None, "n"))
            .query()
        )
        (row,) = q.evaluate(paper_env).relation.to_mappings()
        assert row["n"] == 4

    def test_empty_input_empty_output(self, paper_env):
        q = (
            scan(paper_env, "contacts")
            .select(col("name").eq("Ghost"))
            .aggregate([], ("count", None, "n"))
            .query()
        )
        assert len(q.evaluate(paper_env).relation) == 0

    def test_min_max_preserve_type(self, paper_env):
        node = (
            scan(paper_env, "contacts")
            .aggregate(["messenger"], ("min", "name", "first_name"))
            .node
        )
        assert node.schema.dtype("first_name") is DataType.STRING

    def test_avg_yields_real(self, paper_env):
        node = (
            scan(paper_env, "sensors")
            .invoke("getTemperature")
            .aggregate([], ("avg", "temperature", "m"))
            .node
        )
        assert node.schema.dtype("m") is DataType.REAL

    def test_sum_non_numeric_rejected(self, paper_env):
        with pytest.raises(InvalidOperatorError, match="numeric"):
            scan(paper_env, "contacts").aggregate(
                ["messenger"], ("sum", "name", "s")
            )

    def test_group_by_virtual_rejected(self, paper_env):
        with pytest.raises(VirtualAttributeError):
            scan(paper_env, "contacts").aggregate(["text"], ("count", None, "n"))

    def test_aggregate_virtual_rejected(self, paper_env):
        with pytest.raises(VirtualAttributeError):
            scan(paper_env, "sensors").aggregate(
                ["location"], ("avg", "temperature", "m")
            )

    def test_duplicate_result_name_rejected(self, paper_env):
        with pytest.raises(InvalidOperatorError, match="duplicate"):
            scan(paper_env, "contacts").aggregate(
                ["messenger"], ("count", None, "messenger")
            )

    def test_no_aggregates_rejected(self, paper_env):
        with pytest.raises(InvalidOperatorError, match="at least one"):
            scan(paper_env, "contacts").aggregate(["messenger"])

    def test_binding_patterns_dropped(self, paper_env):
        node = (
            scan(paper_env, "contacts")
            .aggregate(["messenger"], ("count", None, "n"))
            .node
        )
        assert node.schema.binding_patterns == ()

    def test_unknown_function(self):
        with pytest.raises(InvalidOperatorError, match="unknown aggregate"):
            AggregateSpec("median", "x", "m")

    def test_count_without_attribute_only(self):
        with pytest.raises(InvalidOperatorError, match="requires an attribute"):
            AggregateSpec("sum", None, "s")
