"""End-to-end subscription-server tests over real loopback sockets.

Every test runs its own server in manual-tick mode — the test coroutine
calls ``server.tick()`` between protocol exchanges, so delivery is fully
deterministic (no wall-clock ticker)."""

import asyncio
import json
import urllib.parse

from repro.fed import FederatedPEMS
from repro.server import AdmissionControl, SubscriptionServer

from tests.server.scenario import ALL_SQL, HOT_SQL, Churn, make_pems


class WireClient:
    """A minimal JSONL protocol client for tests."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, port: int) -> "WireClient":
        """Open the connection and perform the ping handshake: the
        client speaks first (the server sniffs JSONL vs HTTP), then the
        server greets with ``hello`` before answering the ping."""
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        client = cls(reader, writer)
        await client.op(op="ping")
        client.hello = await client.expect("hello")
        await client.expect("pong")
        return client

    async def op(self, **message) -> None:
        self.writer.write((json.dumps(message) + "\n").encode())
        await self.writer.drain()

    async def recv(self) -> dict | None:
        line = await asyncio.wait_for(self.reader.readline(), 5)
        return json.loads(line) if line else None

    async def expect(self, kind: str) -> dict:
        message = await self.recv()
        assert message is not None and message["type"] == kind, message
        return message

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def started(pems=None, **kwargs) -> SubscriptionServer:
    server = SubscriptionServer(
        pems if pems is not None else make_pems(), **kwargs
    )
    await server.start()
    return server


def apply(state: set, message: dict) -> set:
    """Replay one delta message onto a client replica."""
    deleted = {tuple(row) for row in message["deleted"]}
    inserted = {tuple(row) for row in message["inserted"]}
    assert deleted <= state and not inserted & state
    return (state - deleted) | inserted


class TestProtocolFlow:
    def test_register_tick_delta(self):
        async def scenario():
            server = await started()
            churn = Churn(server.pems)
            try:
                client = await WireClient.connect(server.port)
                assert client.hello["client"] == "c1"
                await client.op(op="register", sql=HOT_SQL, name="hot")
                registered = await client.expect("registered")
                assert registered["name"] == "hot"
                churn.step()
                server.tick()
                delta = await client.expect("delta")
                assert delta["name"] == "hot"
                assert delta["first"] == delta["last"] == 1
                state = apply(set(), delta)
                assert state == churn.hot()
                await client.close()
            finally:
                await server.shutdown()

        asyncio.run(scenario())

    def test_replay_tracks_result_over_many_ticks(self):
        async def scenario():
            server = await started()
            churn = Churn(server.pems)
            try:
                client = await WireClient.connect(server.port)
                await client.op(op="register", sql=HOT_SQL, name="hot")
                await client.expect("registered")
                state: set = set()
                for _ in range(12):
                    churn.step()
                    server.tick()
                    message = await client.expect("delta")
                    state = apply(state, message)
                    assert state == churn.hot()
                await client.close()
            finally:
                await server.shutdown()

        asyncio.run(scenario())

    def test_ping_and_quit(self):
        async def scenario():
            server = await started()
            try:
                client = await WireClient.connect(server.port)
                await client.op(op="ping")
                pong = await client.expect("pong")
                assert pong["instant"] == 0
                await client.op(op="quit")
                await client.expect("bye")
                assert await client.recv() is None  # server closed
                await client.close()
            finally:
                await server.shutdown()

        asyncio.run(scenario())

    def test_bad_sql_keeps_session_alive(self):
        async def scenario():
            server = await started()
            try:
                client = await WireClient.connect(server.port)
                await client.op(op="register", sql="SELEKT nope")
                error = await client.expect("error")
                assert error["reason"] == "query"
                await client.op(op="ping")
                await client.expect("pong")
                await client.close()
            finally:
                await server.shutdown()

        asyncio.run(scenario())

    def test_unknown_op_is_protocol_error(self):
        async def scenario():
            server = await started()
            try:
                client = await WireClient.connect(server.port)
                await client.op(op="teleport")
                error = await client.expect("error")
                assert error["reason"] == "protocol"
                await client.close()
            finally:
                await server.shutdown()

        asyncio.run(scenario())


class TestSharingAndLifecycle:
    def test_same_sql_registers_once(self):
        async def scenario():
            server = await started()
            churn = Churn(server.pems)
            try:
                one = await WireClient.connect(server.port)
                two = await WireClient.connect(server.port)
                await one.op(op="register", sql=HOT_SQL, name="a")
                await one.expect("registered")
                # Same query modulo whitespace — shares the registration.
                await two.op(
                    op="register", sql="  " + HOT_SQL.replace(" ", "  ") + " ;"
                )
                await two.expect("registered")
                assert len(server.queries) == 1
                assert len(server.pems.queries.continuous_queries) == 1
                churn.step()
                server.tick()
                d1 = await one.expect("delta")
                d2 = await two.expect("delta")
                assert d1["inserted"] == d2["inserted"]
                await one.close()
                await two.close()
            finally:
                await server.shutdown()

        asyncio.run(scenario())

    def test_warm_subscriber_gets_snapshot(self):
        async def scenario():
            server = await started()
            churn = Churn(server.pems)
            try:
                one = await WireClient.connect(server.port)
                await one.op(op="register", sql=HOT_SQL, name="hot")
                await one.expect("registered")
                for _ in range(5):
                    churn.step()
                    server.tick()
                    await one.expect("delta")
                two = await WireClient.connect(server.port)
                await two.op(op="register", sql=HOT_SQL, name="hot")
                await two.expect("registered")
                snapshot = await two.expect("delta")
                assert snapshot["first"] == snapshot["last"] == 5
                assert snapshot["deleted"] == []
                assert apply(set(), snapshot) == churn.hot()
                # And the next tick continues incrementally from there.
                churn.step()
                server.tick()
                state = apply(apply(set(), snapshot), await two.expect("delta"))
                assert state == churn.hot()
                await one.close()
                await two.close()
            finally:
                await server.shutdown()

        asyncio.run(scenario())

    def test_deregister_releases_query(self):
        async def scenario():
            server = await started()
            try:
                client = await WireClient.connect(server.port)
                await client.op(op="register", sql=HOT_SQL, name="hot")
                await client.expect("registered")
                await client.op(op="register", sql=ALL_SQL, name="all")
                await client.expect("registered")
                assert len(server.pems.queries.continuous_queries) == 2
                await client.op(op="deregister", name="hot")
                await client.expect("deregistered")
                assert len(server.queries) == 1
                assert len(server.pems.queries.continuous_queries) == 1
                await client.close()
            finally:
                await server.shutdown()

        asyncio.run(scenario())

    def test_disconnect_releases_everything(self):
        async def scenario():
            server = await started()
            try:
                client = await WireClient.connect(server.port)
                await client.op(op="register", sql=HOT_SQL)
                await client.expect("registered")
                await client.close()
                for _ in range(50):  # let the session unwind
                    if not server.queries:
                        break
                    await asyncio.sleep(0.01)
                assert not server.queries
                assert not server.pems.queries.continuous_queries
                assert server.summary()["clients"] == 0
            finally:
                await server.shutdown()

        asyncio.run(scenario())

    def test_shutdown_closes_a_federated_pems(self):
        async def scenario():
            pems = make_pems(
                FederatedPEMS, zones=2, partition_by={"readings": "device"}
            )
            server = await started(pems)
            churn = Churn(pems)
            client = await WireClient.connect(server.port)
            await client.op(op="register", sql=HOT_SQL)
            await client.expect("registered")
            churn.step()
            server.tick()
            await client.expect("delta")
            await server.shutdown()
            assert pems.gossip.closed
            await server.shutdown()  # idempotent
            await client.close()

        asyncio.run(scenario())


class TestAdmission:
    def test_client_cap_closes_connection(self):
        async def scenario():
            admission = AdmissionControl(max_clients=1)
            server = await started(admission=admission)
            try:
                one = await WireClient.connect(server.port)
                # The rejection is written immediately on connect — the
                # client needs to send nothing to receive it.
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                two = WireClient(reader, writer)
                error = await two.recv()
                assert error["type"] == "error"
                assert error["reason"] == "clients"
                assert await two.recv() is None
                await one.close()
                await two.close()
            finally:
                await server.shutdown()

        asyncio.run(scenario())

    def test_per_client_query_cap(self):
        async def scenario():
            admission = AdmissionControl(max_queries_per_client=1)
            server = await started(admission=admission)
            try:
                client = await WireClient.connect(server.port)
                await client.op(op="register", sql=HOT_SQL)
                await client.expect("registered")
                await client.op(op="register", sql=ALL_SQL)
                error = await client.expect("error")
                assert error["reason"] == "client_queries"
                await client.close()
            finally:
                await server.shutdown()

        asyncio.run(scenario())

    def test_metrics_registered(self):
        async def scenario():
            server = await started()
            try:
                client = await WireClient.connect(server.port)
                await client.op(op="register", sql=HOT_SQL, name="hot")
                await client.expect("registered")
                metrics = server.obs.metrics
                assert (
                    metrics.gauge("serena_server_clients", "").value == 1
                )
                assert (
                    metrics.gauge("serena_server_queries", "").value == 1
                )
                assert (
                    metrics.gauge(
                        "serena_server_lag", "", client="c1", sub="hot"
                    ).value
                    == 0
                )
                await client.close()
            finally:
                await server.shutdown()

        asyncio.run(scenario())


class TestSse:
    def test_sse_subscribe_streams_deltas(self):
        async def scenario():
            server = await started()
            churn = Churn(server.pems)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                sql = urllib.parse.quote(HOT_SQL)
                writer.write(
                    f"GET /subscribe?sql={sql}&name=hot HTTP/1.1\r\n"
                    "Host: localhost\r\n\r\n".encode()
                )
                await writer.drain()
                status = await asyncio.wait_for(reader.readline(), 5)
                assert b"200" in status
                while (await reader.readline()) not in (b"\r\n", b"\n"):
                    pass  # headers
                first = await asyncio.wait_for(reader.readline(), 5)
                hello = json.loads(first[6:])
                assert hello["type"] == "hello"
                await reader.readline()  # the blank event separator
                churn.step()
                server.tick()
                event = await asyncio.wait_for(reader.readline(), 5)
                delta = json.loads(event[6:])
                assert delta["type"] == "delta" and delta["name"] == "hot"
                assert apply(set(), delta) == churn.hot()
                writer.close()
            finally:
                await server.shutdown()

        asyncio.run(scenario())

    def test_sse_bad_path_is_400(self):
        async def scenario():
            server = await started()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"GET /nope HTTP/1.1\r\n\r\n")
                await writer.drain()
                status = await asyncio.wait_for(reader.readline(), 5)
                assert b"400" in status
                writer.close()
            finally:
                await server.shutdown()

        asyncio.run(scenario())
