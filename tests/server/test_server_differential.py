"""The server replay differential (the PR's acceptance invariant).

Every subscriber's delta stream — *including* slow consumers whose
bounded queues coalesced under overflow — must replay to exactly the
``shared``-engine result relation at each instant it observes: after
applying a queue entry spanning ``[first, last]``, the client replica
equals the query result at instant ``last``.  Fast consumers observe
every instant; slow ones observe a subsequence — but never a wrong
state, and all converge to the same final relation.

Subscribers here are in-process (no sockets): the delivery queues are
driven directly at scripted consumption cadences, which makes the
overflow/coalesce schedule deterministic.  An independently driven
naive-engine PEMS supplies the oracle, so the chain
``naive ≡ shared ≡ server wire stream`` is pinned end to end.  The same
invariant is then repeated over a federated PEMS.
"""

import asyncio

import pytest

from repro.fed import FederatedPEMS
from repro.pems.pems import PEMS
from repro.server import SubscriptionServer

from tests.server.scenario import ALL_SQL, HOT_SQL, Churn, make_pems

TICKS = 48

#: Consumption cadences: a consumer with cadence k drains its queue only
#: every k-th instant.  Depth 4 against cadence 9 forces heavy overflow.
CADENCES = {"fast": 1, "medium": 3, "slow": 9}


class FakeSession:
    """The session shape ``SubscriptionServer.subscribe`` needs."""

    def __init__(self, client_id):
        self.client_id = client_id
        self.subscriptions = {}


def oracle_results(sql: str, ticks: int) -> dict[int, frozenset]:
    """Instant → result tuples from an independent naive-engine run."""
    pems = make_pems(PEMS, engine="naive")
    churn = Churn(pems)
    query = pems.queries.register_continuous_sql(sql, name="oracle")
    results = {}
    for _ in range(ticks):
        churn.step()
        pems.tick()
        results[pems.clock.now] = frozenset(query.last_result.relation.tuples)
    return results


def drive(server, sql, ticks, queue_depth_note=None):
    """Run the scripted churn with one subscriber per cadence; replay and
    check each stream against the naive oracle at every observed instant."""
    oracle = oracle_results(sql, ticks)
    churn = Churn(server.pems)
    consumers = {
        name: {
            "sub": server.subscribe(FakeSession(name), sql, name),
            "cadence": cadence,
            "state": set(),
            "observed": 0,
        }
        for name, cadence in CADENCES.items()
    }

    async def scenario():
        for _ in range(ticks):
            churn.step()
            instant = server.tick()
            for consumer in consumers.values():
                if instant % consumer["cadence"]:
                    continue
                await drain(consumer)
        for consumer in consumers.values():  # final catch-up drain
            await drain(consumer)

    async def drain(consumer):
        queue = consumer["sub"].queue
        while queue.lag:
            entry = await queue.get()
            state = consumer["state"]
            # Contract-clean against the replica...
            assert not entry.delta.inserted & state
            assert entry.delta.deleted <= state
            state -= entry.delta.deleted
            state |= entry.delta.inserted
            # ...and exactly the oracle relation at the entry's last
            # instant, coalesced or not.
            assert state == oracle[entry.last], (
                f"replica diverged at instant {entry.last} "
                f"(coalesced={entry.coalesced})"
            )
            consumer["observed"] += 1

    asyncio.run(scenario())
    final = oracle[max(oracle)]
    for name, consumer in consumers.items():
        assert consumer["state"] == final, name
    return consumers


class TestSharedEngineReplay:
    def test_all_cadences_replay_exactly(self):
        server = SubscriptionServer(make_pems(), queue_depth=4)
        consumers = drive(server, HOT_SQL, TICKS)
        fast = consumers["fast"]
        slow = consumers["slow"]
        # Non-vacuous: the fast consumer saw (nearly) every instant, the
        # slow consumer was actually coalesced under overflow.
        assert fast["observed"] > slow["observed"]
        assert slow["sub"].queue.coalesced > 0
        assert server.obs.metrics.counter(
            "serena_server_coalesced_total", "", client="slow", sub="slow"
        ).value == slow["sub"].queue.coalesced

    def test_projection_query_replays(self):
        """π can collapse distinct rows — the deltas stay set-exact."""
        server = SubscriptionServer(make_pems(), queue_depth=4)
        drive(server, ALL_SQL, TICKS)

    def test_net_zero_spans_may_drop_but_states_never_lie(self):
        """With depth 2 the slow consumer's merges routinely net out;
        dropped spans must not desynchronize the replica."""
        server = SubscriptionServer(make_pems(), queue_depth=2)
        consumers = drive(server, HOT_SQL, TICKS)
        assert consumers["slow"]["sub"].queue.coalesced > 0


class TestFederatedReplay:
    @pytest.mark.parametrize("parallelism", [None, "threads"])
    def test_federated_server_matches_naive_oracle(self, parallelism):
        pems = make_pems(
            FederatedPEMS,
            zones=2,
            parallelism=parallelism,
            partition_by={"readings": "device"},
        )
        server = SubscriptionServer(pems, queue_depth=4)
        try:
            drive(server, HOT_SQL, TICKS)
        finally:
            pems.close()

    def test_federated_processes_server_replay(self):
        pems = make_pems(
            FederatedPEMS,
            zones=2,
            parallelism="processes",
            partition_by={"readings": "device"},
        )
        server = SubscriptionServer(pems, queue_depth=4)
        try:
            drive(server, HOT_SQL, 24)
        finally:
            pems.close()
