"""Admission-control caps and their rejection metrics."""

import pytest

from repro.obs.observe import Observability
from repro.server.admission import AdmissionControl, AdmissionError


def control(**kwargs):
    return AdmissionControl(observe=Observability.coerce("metrics"), **kwargs)


class TestClients:
    def test_admits_below_cap(self):
        admission = control(max_clients=2)
        admission.admit_client(0)
        admission.admit_client(1)

    def test_rejects_at_cap(self):
        admission = control(max_clients=2)
        with pytest.raises(AdmissionError) as info:
            admission.admit_client(2)
        assert info.value.reason == "clients"
        assert admission.rejected("clients") == 1


class TestSubscriptions:
    def test_per_client_cap(self):
        admission = control(max_queries_per_client=3)
        admission.admit_subscription(2, 0, shared=False)
        with pytest.raises(AdmissionError) as info:
            admission.admit_subscription(3, 0, shared=False)
        assert info.value.reason == "client_queries"
        assert admission.rejected("client_queries") == 1

    def test_total_queries_cap(self):
        admission = control(max_total_queries=5)
        admission.admit_subscription(0, 4, shared=False)
        with pytest.raises(AdmissionError) as info:
            admission.admit_subscription(0, 5, shared=False)
        assert info.value.reason == "total_queries"

    def test_shared_subscription_bypasses_total_cap(self):
        """Joining an already-registered query adds no tick-loop load, so
        only the per-client cap applies."""
        admission = control(max_total_queries=1)
        admission.admit_subscription(0, 1, shared=True)
        with pytest.raises(AdmissionError):
            admission.admit_subscription(0, 1, shared=False)

    def test_rejections_accumulate_per_reason(self):
        admission = control(max_clients=0, max_total_queries=0)
        for _ in range(3):
            with pytest.raises(AdmissionError):
                admission.admit_client(0)
        with pytest.raises(AdmissionError):
            admission.admit_subscription(0, 0, shared=False)
        assert admission.rejected("clients") == 3
        assert admission.rejected("total_queries") == 1
        assert admission.rejected("client_queries") == 0
