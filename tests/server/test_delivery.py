"""Delivery-queue semantics: bounded, coalescing, never blocking."""

import asyncio

import pytest

from repro.exec.delta import Delta, EMPTY_DELTA
from repro.server.delivery import DeliveryQueue, QueuedDelta


def entry(first, last=None, inserted=(), deleted=(), at=1.0):
    return QueuedDelta(
        first,
        first if last is None else last,
        Delta(frozenset(inserted), frozenset(deleted)),
        0,
        at,
    )


def drain(queue):
    """Synchronously pop everything currently pending."""
    out = []
    while queue.lag:
        out.append(asyncio.run(queue.get()))
    return out


class TestBounds:
    def test_depth_validation(self):
        with pytest.raises(ValueError):
            DeliveryQueue(1)

    def test_fifo_below_depth(self):
        queue = DeliveryQueue(4)
        for τ in (1, 2, 3):
            queue.publish(entry(τ, inserted={("r", τ)}))
        entries = drain(queue)
        assert [e.first for e in entries] == [1, 2, 3]
        assert queue.published == 3 and queue.delivered == 3
        assert queue.coalesced == 0 and queue.dropped == 0

    def test_overflow_coalesces_oldest_pair(self):
        queue = DeliveryQueue(2)
        queue.publish(entry(1, inserted={("a",)}))
        queue.publish(entry(2, inserted={("b",)}))
        queue.publish(entry(3, inserted={("c",)}))  # overflow
        assert queue.coalesced == 1
        first, second = drain(queue)
        assert (first.first, first.last) == (1, 2)
        assert first.delta.inserted == {("a",), ("b",)}
        assert first.coalesced == 1
        assert (second.first, second.last) == (3, 3)

    def test_freshest_entries_keep_full_resolution(self):
        """Merging always happens at the old end: after heavy overflow the
        newest depth-1 entries are still per-instant."""
        queue = DeliveryQueue(4)
        for τ in range(1, 11):
            queue.publish(entry(τ, inserted={("r", τ)}))
        entries = drain(queue)
        assert entries[0].first == 1  # one big merged span at the front
        assert [e.first for e in entries[1:]] == [8, 9, 10]
        assert all(e.coalesced == 0 for e in entries[1:])

    def test_net_zero_merge_drops(self):
        queue = DeliveryQueue(2)
        queue.publish(entry(1, inserted={("a",)}))
        queue.publish(entry(2, deleted={("a",)}))  # cancels entry 1
        queue.publish(entry(3, inserted={("b",)}))
        assert queue.dropped == 1 and queue.coalesced == 1
        entries = drain(queue)
        assert len(entries) == 1
        assert entries[0].first == 3

    def test_merge_keeps_oldest_publish_stamp(self):
        queue = DeliveryQueue(2)
        queue.publish(entry(1, inserted={("a",)}, at=10.0))
        queue.publish(entry(2, inserted={("b",)}, at=20.0))
        queue.publish(entry(3, inserted={("c",)}, at=30.0))
        merged = drain(queue)[0]
        assert merged.published_at == 10.0  # worst-case delivery age


class TestReplayLosslessness:
    def test_replay_matches_at_any_depth(self):
        """Whatever the queue depth (= however much coalescing), applying
        the drained entries in order lands on the same final state."""
        script = [
            ({("a",), ("b",)}, set()),
            ({("c",)}, {("a",)}),
            (set(), {("b",)}),
            ({("a",), ("d",)}, {("c",)}),
            ({("b",)}, {("d",)}),
        ]
        final_states = []
        for depth in (2, 3, 64):
            queue = DeliveryQueue(depth)
            for τ, (ins, dels) in enumerate(script, start=1):
                queue.publish(entry(τ, inserted=ins, deleted=dels))
            state: set = set()
            for item in drain(queue):
                assert not item.delta.inserted & state
                assert item.delta.deleted <= state
                state = (state - item.delta.deleted) | item.delta.inserted
            final_states.append(frozenset(state))
        assert len(set(final_states)) == 1
        assert final_states[0] == {("a",), ("b",)}


class TestAsyncConsumption:
    def test_get_waits_for_publish(self):
        async def scenario():
            queue = DeliveryQueue(4)
            waiter = asyncio.ensure_future(queue.get())
            await asyncio.sleep(0)
            assert not waiter.done()
            queue.publish(entry(1, inserted={("a",)}))
            got = await asyncio.wait_for(waiter, 1)
            assert got.first == 1

        asyncio.run(scenario())

    def test_close_drains_then_signals_none(self):
        async def scenario():
            queue = DeliveryQueue(4)
            queue.publish(entry(1, inserted={("a",)}))
            queue.close()
            assert (await queue.get()).first == 1
            assert await queue.get() is None
            assert await queue.get() is None  # stays closed
            queue.publish(entry(2))  # ignored after close
            assert queue.lag == 0

        asyncio.run(scenario())

    def test_empty_delta_entries_pass_through_unmerged(self):
        queue = DeliveryQueue(4)
        queue.publish(QueuedDelta(1, 1, EMPTY_DELTA, 0, 0.0))
        queue.publish(entry(2, inserted={("a",)}))
        assert [e.first for e in drain(queue)] == [1, 2]


class TestDrainReady:
    """The batch primitive behind one-writelines-per-socket-per-tick."""

    def test_drains_everything_pending_in_fifo_order(self):
        queue = DeliveryQueue(8)
        for τ in (1, 2, 3, 4):
            queue.publish(entry(τ, inserted={("r", τ)}))
        batch = queue.drain_ready()
        assert [e.first for e in batch] == [1, 2, 3, 4]
        assert queue.lag == 0
        assert queue.delivered == 4

    def test_empty_when_nothing_pending(self):
        queue = DeliveryQueue(4)
        assert queue.drain_ready() == []
        assert queue.delivered == 0

    def test_get_then_drain_covers_the_backlog_exactly_once(self):
        queue = DeliveryQueue(8)
        for τ in (1, 2, 3):
            queue.publish(entry(τ, inserted={("r", τ)}))
        first = asyncio.run(queue.get())
        rest = queue.drain_ready()
        assert [first.first] + [e.first for e in rest] == [1, 2, 3]
        assert queue.lag == 0 and queue.delivered == 3
        # the ready flag was cleared: a fresh publish re-arms it
        queue.publish(entry(4))
        assert asyncio.run(queue.get()).first == 4

    def test_drain_after_close_still_returns_pending(self):
        queue = DeliveryQueue(4)
        queue.publish(entry(1, inserted={("a",)}))
        queue.close()
        assert [e.first for e in queue.drain_ready()] == [1]
        assert asyncio.run(queue.get()) is None
