"""Wire-format tests: JSONL framing, row rendering, the SSE shim."""

import json

import pytest

from repro.server.protocol import (
    ProtocolError,
    decode_line,
    encode,
    render_rows,
    sse_error_response,
    sse_event,
    sse_response_head,
)


class TestFraming:
    def test_encode_is_one_line(self):
        line = encode({"type": "pong", "instant": 7})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1
        assert json.loads(line) == {"type": "pong", "instant": 7}

    def test_roundtrip(self):
        message = {"op": "register", "sql": "SELECT * FROM r", "name": "q"}
        assert decode_line(encode(message)) == message

    def test_rejects_malformed_json(self):
        with pytest.raises(ProtocolError, match="malformed"):
            decode_line(b"{nope\n")

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="object"):
            decode_line(b"[1, 2]\n")

    def test_rejects_missing_op(self):
        with pytest.raises(ProtocolError, match="op"):
            decode_line(b'{"sql": "SELECT 1"}\n')

    def test_non_json_values_degrade_to_strings(self):
        line = encode({"type": "delta", "inserted": [[frozenset()]]})
        assert json.loads(line)  # default=str keeps the wire valid


class TestRows:
    def test_rows_are_sorted_lists(self):
        rows = render_rows({("b", 2.0), ("a", 1.0), ("a", 0.5)})
        assert rows == sorted(rows, key=repr)
        assert all(isinstance(row, list) for row in rows)
        assert ["a", 1.0] in rows

    def test_deterministic_across_set_orders(self):
        tuples = [("x", i) for i in range(20)]
        assert render_rows(frozenset(tuples)) == render_rows(
            frozenset(reversed(tuples))
        )


class TestSse:
    def test_response_head(self):
        head = sse_response_head()
        assert head.startswith(b"HTTP/1.1 200")
        assert b"text/event-stream" in head
        assert head.endswith(b"\r\n\r\n")

    def test_event_framing(self):
        event = sse_event({"type": "delta", "first": 1})
        assert event.startswith(b"data: ")
        assert event.endswith(b"\n\n")
        assert json.loads(event[6:]) == {"type": "delta", "first": 1}

    def test_error_response_has_length(self):
        response = sse_error_response("400 Bad Request", "nope")
        head, _, body = response.partition(b"\r\n\r\n")
        assert b"400" in head
        assert f"Content-Length: {len(body)}".encode() in head
