"""A deterministic churn scenario shared by the server tests and bench.

One ``readings(device, value)`` relation; every tick each device's value
is recomputed from a fixed formula, so rows enter and leave any
value-filtered query's result constantly — exactly the per-instant delta
traffic the subscription server exists to push.
"""

from repro.model.attributes import Attribute
from repro.model.types import DataType
from repro.model.xschema import ExtendedRelationSchema
from repro.pems.pems import PEMS

HOT_SQL = "SELECT device, value FROM readings WHERE value > 50.0"
ALL_SQL = "SELECT device, value FROM readings"


def readings_schema() -> ExtendedRelationSchema:
    return ExtendedRelationSchema(
        "readings",
        [
            Attribute("device", DataType.STRING),
            Attribute("value", DataType.REAL),
        ],
    )


def make_pems(factory=PEMS, **kwargs) -> PEMS:
    pems = factory(**kwargs)
    pems.tables.create_relation(readings_schema())
    return pems


def value_at(device: int, instant: int) -> float:
    return float((device * 17 + instant * 31) % 97)


class Churn:
    """Deterministic per-tick churn over ``readings``."""

    def __init__(self, pems: PEMS, devices: int = 8):
        self.pems = pems
        self.devices = devices
        self.state = {i: value_at(i, 0) for i in range(devices)}
        pems.tables.insert_tuples(
            "readings",
            [(f"d{i}", v) for i, v in self.state.items()],
            instant=pems.clock.now,
        )

    def step(self) -> int:
        """Write the next instant's values (call right before ``tick``)."""
        instant = self.pems.clock.now + 1
        for i in range(self.devices):
            new = value_at(i, instant)
            old = self.state[i]
            if new == old:
                continue
            self.pems.tables.delete_tuples(
                "readings", [(f"d{i}", old)], instant=instant
            )
            self.pems.tables.insert_tuples(
                "readings", [(f"d{i}", new)], instant=instant
            )
            self.state[i] = new
        return instant

    def hot(self) -> frozenset:
        """The expected HOT_SQL result for the current state."""
        return frozenset(
            (f"d{i}", v) for i, v in self.state.items() if v > 50.0
        )

    def rows(self) -> frozenset:
        return frozenset((f"d{i}", v) for i, v in self.state.items())
