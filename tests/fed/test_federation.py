"""Unit tests for the federation layer: ring, relation, routing, gather.

The sharded-PEMS building blocks in isolation — consistent hashing,
the partitioned XD-Relation, partition pruning in the federated
registry, gather support counting, the Local-ERM facade, frozen-registry
semantics under the process executor, scatter sharing, shard-aware
costing, and the ``.shards`` / ``.explain federated`` surfaces.  The
end-to-end determinism claims live in ``test_fed_differential.py``.
"""

import pytest

from repro.algebra import col, scan
from repro.algebra.cost import CostModel
from repro.algebra.fingerprint import canonical_plan
from repro.devices.scenario import sensors_schema, temperatures_schema
from repro.devices.sensors import TemperatureSensor
from repro.errors import SerenaError, UnknownServiceError
from repro.fed import FederatedPEMS, FederatedRelation, HashRing
from repro.fed.hashing import VIRTUAL_NODES
from repro.pems.pems import PEMS

ZONES = ("zone-0", "zone-1", "zone-2", "zone-3")


@pytest.fixture
def fed():
    pems = FederatedPEMS(zones=4)
    pems.tables.create_relation(sensors_schema())
    return pems


def refs_in_distinct_zones(pems, count=2):
    """Service references routed to pairwise distinct zones."""
    picked, zones = [], set()
    for i in range(200):
        ref = f"svc-{i}"
        zone = pems.ring.zone_for(ref)
        if zone not in zones:
            zones.add(zone)
            picked.append(ref)
            if len(picked) == count:
                return picked
    raise AssertionError("ring failed to spread 200 keys")


class TestHashRing:
    def test_deterministic_across_instances(self):
        a, b = HashRing(ZONES), HashRing(ZONES)
        keys = [f"service-{i}" for i in range(100)]
        assert [a.zone_for(k) for k in keys] == [b.zone_for(k) for k in keys]

    def test_every_zone_owns_keys(self):
        ring = HashRing(ZONES)
        owners = {ring.zone_for(f"service-{i}") for i in range(200)}
        assert owners == set(ZONES)

    def test_adding_a_zone_moves_only_an_arc(self):
        small, big = HashRing(ZONES), HashRing(ZONES + ("zone-4",))
        keys = [f"service-{i}" for i in range(500)]
        moved = sum(small.zone_for(k) != big.zone_for(k) for k in keys)
        assert 0 < moved < len(keys) // 2  # consistent, not rehash-everything

    def test_non_string_keys_route_by_repr(self):
        ring = HashRing(ZONES)
        assert ring.zone_for(42) == ring.zone_for(42)
        assert ring.zone_for((1, "a")) == ring.zone_for((1, "a"))

    def test_empty_and_duplicate_zones_rejected(self):
        with pytest.raises(SerenaError):
            HashRing(())
        with pytest.raises(SerenaError):
            HashRing(("z", "z"))

    def test_virtual_nodes(self):
        ring = HashRing(ZONES)
        assert len(ring._points) == len(ZONES) * VIRTUAL_NODES


class TestFederatedRelation:
    def test_partition_attribute_defaults_to_service_column(self, fed):
        relation = fed.tables.relation("sensors")
        assert isinstance(relation, FederatedRelation)
        assert relation.partition_attribute == "sensor"

    def test_writes_route_and_reads_merge(self, fed):
        relation = fed.tables.relation("sensors")
        a, b = refs_in_distinct_zones(fed)
        rows = [
            {"sensor": a, "location": "hall"},
            {"sensor": b, "location": "roof"},
        ]
        relation.insert_mappings(rows, instant=1)
        # Each tuple lives in exactly one partition, the one the ring picks.
        for row in rows:
            values = relation.schema.tuple_from_mapping(row)
            owner = relation.zone_of(values)
            assert owner == fed.ring.zone_for(row["sensor"])
            holders = [
                z
                for z, part in relation.partitions.items()
                if values in part.instantaneous(1).tuples
            ]
            assert holders == [owner]
        assert len(relation) == 2
        assert relation.last_instant == 1
        # The merged journal is what one XD-Relation would report.
        [(instant, inserted, deleted)] = relation.changes_between(0, 5)
        assert instant == 1
        assert len(inserted) == 2 and not deleted
        relation.delete_mappings(rows[:1], instant=3)
        assert len(relation.instantaneous(3).tuples) == 1
        assert relation.revision == 3  # two partition revisions summed

    def test_delete_on_stream_rejected(self, fed):
        fed.tables.create_relation(temperatures_schema(), infinite=True)
        stream = fed.tables.relation("temperatures")
        stream.insert_mappings(
            [{"sensor": "s", "location": "x", "temperature": 1.0, "at": 1}],
            instant=1,
        )
        with pytest.raises(SerenaError):
            stream.delete(list(stream.instantaneous(1).tuples), instant=2)

    def test_zone_for_value_is_the_pruning_hook(self, fed):
        relation = fed.tables.relation("sensors")
        assert relation.zone_for_value("svc-1") == fed.ring.zone_for("svc-1")


class TestPartitionPruning:
    def route(self, fed, builder):
        return fed.queries.shared._route_zones(canonical_plan(builder.query()))

    def test_pinned_selection_routes_to_one_zone(self, fed):
        plan = scan(fed.environment, "sensors").select(col("sensor").eq("svc-7"))
        assert self.route(fed, plan) == (fed.ring.zone_for("svc-7"),)

    def test_pin_survives_renaming(self, fed):
        plan = (
            scan(fed.environment, "sensors")
            .rename("sensor", "device")
            .select(col("device").eq("svc-7"))
        )
        assert self.route(fed, plan) == (fed.ring.zone_for("svc-7"),)

    def test_unpinned_selection_fans_out(self, fed):
        plan = scan(fed.environment, "sensors").select(
            col("location").eq("hall")
        )
        assert set(self.route(fed, plan)) == set(ZONES)

    def test_projection_dropping_the_attribute_blocks_pruning(self, fed):
        plan = (
            scan(fed.environment, "sensors")
            .project("location")
            .select(col("location").eq("hall"))
        )
        assert set(self.route(fed, plan)) == set(ZONES)


class TestGatherSupportCounting:
    def test_projection_collapses_across_zones(self, fed):
        """π[location] over rows in two zones: the merged row appears
        once and survives until *every* supporting zone deletes it."""
        relation = fed.tables.relation("sensors")
        a, b = refs_in_distinct_zones(fed)
        cq = fed.queries.register_continuous(
            scan(fed.environment, "sensors").project("location").query(),
            name="where",
        )
        relation.insert_mappings(
            [
                {"sensor": a, "location": "hall"},
                {"sensor": b, "location": "hall"},
            ],
            instant=1,
        )
        fed.tick()
        assert cq.last_result.relation.tuples == {("hall",)}
        relation.delete_mappings([{"sensor": a, "location": "hall"}], instant=2)
        fed.tick()
        assert cq.last_result.relation.tuples == {("hall",)}
        assert not cq._engine.reported.deleted  # still supported by zone b
        relation.delete_mappings([{"sensor": b, "location": "hall"}], instant=3)
        fed.tick()
        assert cq.last_result.relation.tuples == set()
        assert cq._engine.reported.deleted == frozenset({("hall",)})

    def test_pruned_query_is_marked_and_correct(self, fed):
        relation = fed.tables.relation("sensors")
        a, b = refs_in_distinct_zones(fed)
        relation.insert_mappings(
            [
                {"sensor": a, "location": "hall"},
                {"sensor": b, "location": "roof"},
            ],
            instant=1,
        )
        cq = fed.queries.register_continuous(
            scan(fed.environment, "sensors")
            .select(col("sensor").eq(a))
            .query(),
            name="pinned",
        )
        fed.tick()
        assert cq.last_result.relation.tuples == {(a, "hall")}
        [row] = fed.queries.shared.scatter_summary()
        assert row["pruned"]
        assert list(row["zones"]) == [fed.ring.zone_for(a)]


class TestFederatedLocalERM:
    def test_registrations_route_by_reference(self, fed):
        local = fed.create_local_erm("building")
        names = [f"sensor-{i}" for i in range(12)]
        for name in names:
            local.register(TemperatureSensor(name, "hall").as_service())
        assert {s.reference for s in local.services} == set(names)
        for name in names:
            assert local.zone_of(name) == fed.ring.zone_for(name)
        # The coordinator registry sees every service through gossip.
        fed.tick()
        assert set(names) <= fed.environment.registry.references

    def test_deregister_unknown_raises(self, fed):
        local = fed.create_local_erm("building")
        with pytest.raises(UnknownServiceError):
            local.deregister("ghost")

    def test_deregister_routes_to_owner(self, fed):
        local = fed.create_local_erm("building")
        local.register(TemperatureSensor("s1", "hall").as_service())
        fed.tick()
        local.deregister("s1")
        fed.tick()
        assert "s1" not in fed.environment.registry


class TestScatterSharing:
    def test_identical_subtrees_share_one_gather_entry(self, fed):
        make = lambda: (  # noqa: E731
            scan(fed.environment, "sensors")
            .select(col("location").eq("hall"))
            .query()
        )
        fed.queries.register_continuous(make(), name="one")
        per_zone = {
            name: len(zone.plans._entries) for name, zone in fed.zones.items()
        }
        fed.queries.register_continuous(make(), name="two")
        [row] = fed.queries.shared.scatter_summary()
        assert row["refcount"] == 2
        assert set(row["zones"]) == set(ZONES)
        # Each zone runs the chain once, not once per query.
        assert per_zone == {
            name: len(zone.plans._entries) for name, zone in fed.zones.items()
        }
        fed.queries.deregister_continuous("one")
        [row] = fed.queries.shared.scatter_summary()
        assert row["refcount"] == 1
        fed.queries.deregister_continuous("two")
        assert fed.queries.shared.scatter_summary() == []
        for zone in fed.zones.values():
            assert not zone.plans._entries  # shard leases cascaded


class TestProcessExecutor:
    def test_registry_freezes_after_fork(self):
        pems = FederatedPEMS(zones=2, parallelism="processes")
        try:
            pems.tables.create_relation(sensors_schema())
            pems.queries.register_continuous(
                scan(pems.environment, "sensors")
                .select(col("location").eq("hall"))
                .query(),
                name="early",
            )
            pems.tick()  # forks the zone workers
            with pytest.raises(SerenaError):
                pems.queries.register_continuous(
                    scan(pems.environment, "sensors")
                    .project("location")
                    .query(),
                    name="late",
                )
        finally:
            pems.shutdown()
            pems.shutdown()  # idempotent

    def test_rejects_unknown_parallelism(self):
        with pytest.raises(SerenaError):
            FederatedPEMS(zones=2, parallelism="gpu")


class TestShardAwareCosting:
    def test_scatter_chain_cost_drops_with_shards(self, fed):
        fed.tables.relation("sensors").insert_mappings(
            [{"sensor": f"svc-{i}", "location": "hall"} for i in range(20)],
            instant=1,
        )
        model = CostModel(fed.environment, instant=1)
        plan = (
            scan(fed.environment, "sensors")
            .select(col("location").eq("hall"))
            .project("location")
            .query()
        )
        costs = [
            model.tick_cost(plan, engine="incremental", shards=n).total
            for n in (1, 2, 4, 8)
        ]
        assert costs == sorted(costs, reverse=True)
        assert costs[-1] < costs[0]

    def test_single_shard_matches_unsharded(self, fed):
        fed.tables.relation("sensors").insert_mappings(
            [{"sensor": f"svc-{i}", "location": "hall"} for i in range(20)],
            instant=1,
        )
        model = CostModel(fed.environment, instant=1)
        plan = scan(fed.environment, "sensors").project("location").query()
        base = model.tick_cost(plan, engine="incremental")
        assert model.tick_cost(plan, engine="incremental", shards=1) == base


class TestExplainAndShell:
    def test_explain_federated_marks_scatter_and_pruning(self, fed):
        from repro.lang.printer import explain_federated

        text = explain_federated(
            scan(fed.environment, "sensors")
            .select(col("sensor").eq("svc-7"))
            .query(),
            fed.queries.shared,
        )
        assert "scatter to" in text
        assert "(pruned)" in text
        assert "[shard]" in text

    def test_explain_federated_degrades_on_plain_registry(self):
        from repro.lang.printer import explain_federated

        pems = PEMS()
        pems.tables.create_relation(sensors_schema())
        text = explain_federated(
            scan(pems.environment, "sensors").query(), pems.queries.shared
        )
        assert "not a federated PEMS" in text

    def test_shards_command(self, capsys):
        from repro.cli import SerenaShell

        shell = SerenaShell()
        shell.execute(".demo temperature federated")
        shell.execute(".tick 3")
        shell.execute(".shards")
        out = capsys.readouterr().out
        assert "4 zones, lockstep" in out
        assert "zone-0:" in out

    def test_shards_command_on_plain_pems(self, capsys):
        from repro.cli import SerenaShell

        shell = SerenaShell()
        shell.execute(".shards")
        assert "not a federated PEMS" in capsys.readouterr().out
