"""Federation lifecycle bugfix tests (PR 8).

Three defects pinned here:

* the gossip relay had no ``close()`` — tearing down a federation left
  its relay callback subscribed to every zone bus segment, republishing
  onto the dead coordinator bus forever;
* ``GatherExec._shard_delta`` skipped the warm-shard ``fresh_view()``
  first-tick catch-up on the remote (process-worker) path — a gather
  created after a worker advanced silently missed the shard's standing
  rows (and the frozen registry refused such gathers outright, even for
  subtrees the workers already compute);
* gather input stats were counted before deduplication, overstating
  EXPLAIN ANALYZE cardinalities for shipped deltas with duplicates.
"""

import pytest

from repro.algebra import col, scan
from repro.algebra.context import EvaluationContext
from repro.devices.sensors import TemperatureSensor
from repro.errors import SerenaError
from repro.fed import FederatedPEMS
from repro.fed.gather import GatherExec, Shard
from repro.model.attributes import Attribute
from repro.model.environment import PervasiveEnvironment
from repro.model.services import ServiceRegistry
from repro.model.types import DataType
from repro.model.xschema import ExtendedRelationSchema
from repro.pems.discovery import Announcement, AnnouncementKind, DiscoveryBus
from repro.pems.pems import PEMS


def sensor_announcement(reference="sensor01", instant=0):
    service = TemperatureSensor(reference, "corridor").as_service()
    return Announcement(AnnouncementKind.ALIVE, service, "erm", 4, instant)


# -- gossip relay teardown ----------------------------------------------------


class TestGossipClose:
    def test_close_stops_relaying(self):
        from repro.fed.gossip import GossipRelay

        coordinator = DiscoveryBus()
        segments = (DiscoveryBus(), DiscoveryBus())
        relay = GossipRelay(coordinator, segments)
        segments[0].publish(sensor_announcement("a"))
        assert relay.relayed == 1
        assert coordinator.published_count == 1
        relay.close()
        assert relay.closed
        segments[0].publish(sensor_announcement("b", instant=1))
        segments[1].publish(sensor_announcement("c", instant=1))
        assert relay.relayed == 1  # nothing relayed after close
        assert coordinator.published_count == 1
        relay.close()  # idempotent
        # The zone buses no longer hold the relay callback at all.
        for segment in segments:
            assert relay._callback not in segment._listeners

    def test_federated_pems_close_detaches_relay(self):
        fed = FederatedPEMS(zones=2)
        zone_bus = next(iter(fed.zones.values())).bus
        relayed_before = fed.gossip.relayed
        fed.close()
        assert fed.gossip.closed
        zone_bus.publish(sensor_announcement("late"))
        assert fed.gossip.relayed == relayed_before
        fed.close()  # idempotent, including the worker shutdown path

    def test_plain_pems_close_is_a_noop(self):
        pems = PEMS()
        pems.close()
        pems.close()
        assert pems.tick() == 1  # still usable; close holds no resources


# -- gather stats count after dedup -------------------------------------------


class _StubZone:
    def __init__(self, name):
        self.name = name


class _StubRegistry:
    """Remote-mode registry stub shipping a duplicate-laden delta."""

    def __init__(self, pending):
        self.pending = dict(pending)
        self.views = {}

    def take_remote(self, zone_name, digest):
        return self.pending.pop((zone_name, digest), (frozenset(), frozenset()))

    def remote_view(self, zone_name, digest):
        return self.views.get((zone_name, digest))


class _StubNode:
    def symbol(self):
        return "σ"


class TestGatherStatsDedup:
    def _ctx(self, instant):
        environment = PervasiveEnvironment(ServiceRegistry())
        return EvaluationContext(environment, instant, {}, continuous=True)

    def test_duplicate_shipped_rows_counted_once(self):
        row_a, row_b = ("a", 1.0), ("b", 2.0)
        registry = _StubRegistry(
            {("z0", "d0"): ([row_a, row_a, row_b], [])}
        )
        gather = GatherExec(
            _StubNode(), [Shard(_StubZone("z0"), None, "d0")], registry
        )
        change = gather.tick(self._ctx(1))
        assert change.inserted == frozenset({row_a, row_b})
        assert gather.stats.input_inserted == 2  # not 3
        assert gather.stats.input_deleted == 0
        # And deletions dedup symmetrically on a later tick.
        registry.pending[("z0", "d0")] = ([], [row_a, row_a])
        change = gather.tick(self._ctx(2))
        assert change.deleted == frozenset({row_a})
        assert gather.stats.input_deleted == 1

    def test_fresh_gather_replays_remote_view(self):
        """A gather created after the worker advanced catches up from the
        maintained remote view, not from the incremental pending delta."""
        standing, fresh_row = ("old", 1.0), ("new", 2.0)
        registry = _StubRegistry({("z0", "d0"): ([fresh_row], [])})
        registry.views[("z0", "d0")] = frozenset({standing, fresh_row})
        gather = GatherExec(
            _StubNode(), [Shard(_StubZone("z0"), None, "d0")], registry
        )
        change = gather.tick(self._ctx(9))
        assert change.inserted == frozenset({standing, fresh_row})
        assert change.deleted == frozenset()
        # The pending delta was consumed, not left to double-count.
        assert registry.pending == {}


# -- late registration in processes mode --------------------------------------


def readings_schema():
    return ExtendedRelationSchema(
        "readings",
        [
            Attribute("device", DataType.SERVICE),
            Attribute("sector", DataType.STRING),
            Attribute("value", DataType.REAL),
        ],
    )


SECTORS = 4


def reading(idx, version=0):
    return (
        f"device-{idx}",
        f"sector-{idx % SECTORS}",
        float((idx * 13 + version * 7) % 97),
    )


def pinned_query(environment):
    return (
        scan(environment, "readings")
        .select(col("sector").eq("sector-1"))
        .project("device", "value")
        .query()
    )


def fanout_query(environment):
    return (
        scan(environment, "readings")
        .select(col("value").ge(50.0))
        .project("sector")
        .query()
    )


class _Timeline:
    """One scripted run: churn every tick, deregister at 4, re-register
    the same subtrees at 7, keep churning to 12."""

    def __init__(self, pems):
        self.pems = pems
        pems.tables.create_relation(readings_schema())
        self.relation = pems.tables.relation("readings")
        self.rows = {idx: reading(idx) for idx in range(16)}
        self.relation.insert(self.rows.values(), instant=0)
        self.snapshots = {}

    def churn(self, instant):
        for idx in range(0, 16, 3):
            replacement = reading(idx, version=instant)
            if replacement != self.rows[idx]:
                self.relation.delete([self.rows[idx]], instant=instant)
                self.relation.insert([replacement], instant=instant)
                self.rows[idx] = replacement

    def run(self):
        queries = self.pems.queries
        env = self.pems.environment
        queries.register_continuous(pinned_query(env), name="early-pin")
        queries.register_continuous(fanout_query(env), name="early-fan")
        for _ in range(4):
            self.churn(self.pems.clock.now + 1)
            self.pems.tick()
        queries.deregister_continuous("early-pin")
        queries.deregister_continuous("early-fan")
        for _ in range(3):
            self.churn(self.pems.clock.now + 1)
            self.pems.tick()
        late_pin = queries.register_continuous(pinned_query(env), name="late-pin")
        late_fan = queries.register_continuous(fanout_query(env), name="late-fan")
        for _ in range(5):
            self.churn(self.pems.clock.now + 1)
            self.pems.tick()
            instant = self.pems.clock.now
            self.snapshots[instant] = {
                "pin": late_pin.last_result.relation.tuples,
                "fan": late_fan.last_result.relation.tuples,
                "pin-delta": (
                    frozenset(late_pin.last_reported_delta.inserted),
                    frozenset(late_pin.last_reported_delta.deleted),
                ),
            }
        close = getattr(self.pems, "close", None)
        if close is not None:
            close()
        return self.snapshots


class TestLateRegistrationProcesses:
    def _federated(self, parallelism):
        return FederatedPEMS(
            zones=2, parallelism=parallelism, partition_by={"readings": "sector"}
        )

    def test_reregistered_gather_matches_shared(self):
        """Deregister + re-register the same scattered subtrees after the
        workers forked: the fresh gathers must replay the warm shards'
        standing rows (the remote-path catch-up) and stay tuple-identical
        to the shared engine from the registration instant on."""
        oracle = _Timeline(PEMS(engine="shared")).run()
        run = _Timeline(self._federated("processes")).run()
        assert run == oracle
        # Non-vacuous: the pinned query has standing rows at re-register.
        assert any(snapshot["pin"] for snapshot in oracle.values())

    def test_reregistered_gather_matches_shared_lockstep(self):
        """Same timeline under lockstep (the in-process catch-up path)."""
        oracle = _Timeline(PEMS(engine="shared")).run()
        assert _Timeline(self._federated(None)).run() == oracle

    def test_lease_hit_late_registration_processes(self):
        """Registering a second query over a *live* scattered subtree
        after the fork is a lease hit and needs no new gather."""
        pems = self._federated("processes")
        try:
            timeline = _Timeline(pems)
            pems.queries.register_continuous(
                pinned_query(pems.environment), name="early"
            )
            for _ in range(3):
                timeline.churn(pems.clock.now + 1)
                pems.tick()
            late = pems.queries.register_continuous(
                pinned_query(pems.environment), name="late"
            )
            timeline.churn(pems.clock.now + 1)
            pems.tick()
            early = pems.queries.continuous_query("early")
            assert late.last_result.relation == early.last_result.relation
        finally:
            pems.close()

    def test_unknown_subtree_still_frozen(self):
        """A subtree no worker computes still cannot scatter post-fork."""
        pems = self._federated("processes")
        try:
            timeline = _Timeline(pems)
            pems.queries.register_continuous(
                pinned_query(pems.environment), name="early"
            )
            pems.tick()
            with pytest.raises(SerenaError, match="frozen"):
                pems.queries.register_continuous(
                    scan(pems.environment, "readings")
                    .project("sector")
                    .query(),
                    name="late",
                )
        finally:
            pems.close()

    def test_nested_worker_subtree_can_scatter_late(self):
        """The workers compute *nested* subtrees too (child leases), so a
        late query over exactly a nested chain is admitted and correct."""
        pems = self._federated("processes")
        try:
            timeline = _Timeline(pems)
            env = pems.environment
            outer = (
                scan(env, "readings")
                .select(col("value").ge(50.0))
                .project("sector")
                .query()
            )
            pems.queries.register_continuous(outer, name="early")
            for _ in range(3):
                timeline.churn(pems.clock.now + 1)
                pems.tick()
            inner = (
                scan(env, "readings").select(col("value").ge(50.0)).query()
            )
            late = pems.queries.register_continuous(inner, name="late")
            timeline.churn(pems.clock.now + 1)
            pems.tick()
            expected = frozenset(
                row for row in timeline.rows.values() if row[2] >= 50.0
            )
            assert late.last_result.relation.tuples == expected
        finally:
            pems.close()
