"""Federated semantic substitution: the spare lives on a *different*
zone shard than the dying sensor, yet the rebinding path (failover at
the crash instant, sticky binding afterwards) is tuple-identical to the
single-node shared engine — candidates are gossip-discovered and all
invocations route through the coordinator registry, so the substitution
machinery is shard-location agnostic.
"""

from tests.exec.test_substitution_differential import (
    drive_substitution_scenario,
)


def test_federated_substitution_matches_shared():
    base, base_snaps = drive_substitution_scenario("shared")
    run, snaps = drive_substitution_scenario("federated")
    try:
        for instant, (a, b) in enumerate(zip(base_snaps, snaps), start=1):
            assert a == b, f"tick {instant} diverged"

        # The rebinding is real on the federation too: the binding is
        # installed, sensor22 feeds every instant, and the shard summary
        # surfaces the substitution.
        for instant, snap in enumerate(snaps, start=1):
            assert "sensor22" in snap["fed_this_tick"], f"missed tick {instant}"
        summary = run.pems.shard_summary()
        assert summary["substitutions"] == {
            "getTemperature[sensor22]": "specializes spare-roof/getEnvReading"
        }

        # The determinism is not vacuous sharding-wise: the dying sensor
        # and its substitute genuinely live on different zone shards.
        ring = run.pems.ring
        assert ring.zone_for("spare-roof") != ring.zone_for("sensor22")
        populated = [
            z
            for z in summary["zones"]
            if z["services"] or z["rows"]
        ]
        assert len(populated) >= 2
    finally:
        for scenario in (base, run):
            shutdown = getattr(scenario.pems, "shutdown", None)
            if shutdown is not None:
                shutdown()
