"""Differential tests: the federated engine vs the shared engine.

The decisive determinism claims of the sharded federation, over the full
Section 5.2 scenarios (≥ 50 instants, relation churn, hot-plugged and
deregistered services, cross-zone discovery):

* **lockstep** federation (4 zones on the shared VirtualClock) is
  tuple-identical to the single-node ``shared`` engine at every instant
  — snapshots, emitted streams, action logs and the message outbox;
* the **threads** shard executor is tuple-identical to lockstep (the
  per-tick barrier preserves determinism);
* the **processes** shard executor is tuple-identical to lockstep (the
  journal-slice ship marks mirror the ScanExec high-water discipline).

The scenario drivers come from ``tests.exec.test_differential`` so the
federated engines face exactly the churn scripts the four single-node
engines are pinned against.
"""

import pytest

from tests.exec.test_differential import (
    action_strings,
    drive_rss_scenario,
    drive_temperature_scenario,
    outbox_key,
)


def assert_scenarios_agree(engine, reference="shared"):
    base, base_snaps = drive_temperature_scenario(reference)
    run, snaps = drive_temperature_scenario(engine)
    try:
        assert snaps == base_snaps, engine
        for name in base.queries:
            cq_b, cq = base.queries[name], run.queries[name]
            assert sorted(cq.emitted) == sorted(cq_b.emitted), (engine, name)
            assert action_strings(cq.actions) == action_strings(
                cq_b.actions
            ), (engine, name)
            assert [a.describe() for a in cq.action_log] == [
                a.describe() for a in cq_b.action_log
            ], (engine, name)
        assert outbox_key(run.outbox) == outbox_key(base.outbox), engine
        # The run did real work: photos flowed and messages were sent.
        assert base.outbox.messages
        assert base.queries["cold-photos"].emitted
    finally:
        for scenario in (base, run):
            shutdown = getattr(scenario.pems, "shutdown", None)
            if shutdown is not None:
                shutdown()


def test_temperature_lockstep_matches_shared():
    """4-zone lockstep federation == shared engine over 55 ticks of the
    temperature scenario (hot-plug at 12, removal at 30, the jabber
    gateway deregistering at 40)."""
    assert_scenarios_agree("federated")


def test_temperature_threads_matches_shared():
    assert_scenarios_agree("federated-threads")


def test_temperature_processes_matches_shared():
    assert_scenarios_agree("federated-processes")


def test_rss_lockstep_matches_shared():
    """The RSS scenario: cross-zone join of feeds and contacts, with the
    jabber gateway lost mid-run."""
    base, base_snaps = drive_rss_scenario("shared")
    run, snaps = drive_rss_scenario("federated")
    assert snaps == base_snaps
    for name in base.queries:
        cq_b, cq = base.queries[name], run.queries[name]
        assert action_strings(cq.actions) == action_strings(cq_b.actions), name
    assert outbox_key(run.outbox) == outbox_key(base.outbox)
    assert any(snap["matching-news"] for snap in base_snaps)


def test_zone_state_is_actually_sharded():
    """The determinism above is not vacuous: the scenario's services and
    rows really do land on multiple zone shards."""
    run, _ = drive_temperature_scenario("federated")
    summary = run.pems.shard_summary()
    populated = [z for z in summary["zones"] if z["services"] or z["rows"]]
    assert len(populated) >= 2
    assert summary["gossip_relayed"] > 0
