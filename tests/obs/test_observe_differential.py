"""Differential test: observation never changes evaluation.

The acceptance criterion of the observability subsystem (DESIGN.md §9):
running the §5.2 temperature scenario for 55 ticks with full tracing and
metrics enabled produces results, emissions, actions and messages
byte-identical to the observe-off run — on all three engines.

The scenario's devices are pure functions of (seed, reference, instant),
so two identically-built scenarios see the same world; the only varying
input is the observability mode.
"""

import pytest

from repro.devices.scenario import build_temperature_surveillance

INSTANTS = 55


def build(engine: str, observe: str):
    scenario = build_temperature_surveillance(engine=engine, observe=observe)
    # Exercise alerts (heat), photos (cold) and dynamic discovery so the
    # instrumented paths — invocations, memo hits, scheduler skips,
    # discovery events — all actually run during the window.
    scenario.sensors["sensor06"].heat(3, 20, peak=15.0)
    scenario.sensors["sensor22"].heat(10, 30, peak=-25.0)
    return scenario


def run_fingerprint(scenario) -> str:
    """A byte-exact transcript of everything the run produced."""
    lines: list[str] = []
    for step in range(INSTANTS):
        if step == 20:
            scenario.add_sensor("sensor99", "office", base=21.0)
        if step == 35:
            scenario.remove_sensor("sensor99")
        instant = scenario.pems.tick()
        for name in sorted(scenario.queries):
            continuous = scenario.queries[name]
            result = continuous.last_result
            tuples = sorted(repr(t) for t in result.relation)
            lines.append(f"τ={instant} {name}: {tuples}")
    for name in sorted(scenario.queries):
        continuous = scenario.queries[name]
        lines.append(
            f"{name} actions: {[a.describe() for a in continuous.action_log]}"
        )
        lines.append(f"{name} emitted: {continuous.emitted!r}")
    lines.append(f"messages: {[repr(m) for m in scenario.outbox.messages]}")
    return "\n".join(lines)


@pytest.mark.parametrize("engine", ["naive", "incremental", "shared"])
def test_full_observation_is_invisible_to_results(engine):
    baseline = build(engine, observe="off")
    observed = build(engine, observe="full")
    assert run_fingerprint(baseline) == run_fingerprint(observed)
    # ...and the observed run really did observe.
    obs = observed.pems.obs
    assert obs.tracer.recorded > 0
    assert obs.metrics.value("serena_ticks_total") == INSTANTS
    assert obs.metrics.family_total("serena_invocations_total") > 0
    # The baseline recorded no engine-level series.
    base_obs = baseline.pems.obs
    assert base_obs.metrics.value("serena_ticks_total") == 0
    assert len(base_obs.tracer) == 0


def test_metrics_mode_matches_off_mode_too():
    """The always-on default perturbs nothing either."""
    baseline = build("shared", observe="off")
    observed = build("shared", observe="metrics")
    assert run_fingerprint(baseline) == run_fingerprint(observed)
