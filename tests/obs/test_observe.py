"""Unit tests for the observability facade (repro.obs.observe)."""

import json

import pytest

from repro.obs.observe import OBSERVE_MODES, Observability
from repro.obs.trace import NullTracer, TickTracer


class TestModes:
    def test_default_is_metrics(self):
        obs = Observability()
        assert obs.mode == "metrics"
        assert obs.metrics_on
        assert not obs.tracing_on
        assert isinstance(obs.tracer, NullTracer)

    def test_full_mode_traces(self):
        obs = Observability(mode="full")
        assert obs.metrics_on and obs.tracing_on
        assert isinstance(obs.tracer, TickTracer)

    def test_off_mode_keeps_registry_real(self):
        obs = Observability(mode="off")
        assert not obs.metrics_on and not obs.tracing_on
        # Migrated legacy counters still record through the registry.
        obs.metrics.counter("serena_invocations_total").inc()
        assert obs.metrics.value("serena_invocations_total") == 1

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown observe mode"):
            Observability(mode="loud")

    def test_modes_tuple(self):
        assert OBSERVE_MODES == ("off", "metrics", "full")


class TestCoerce:
    def test_instance_passes_through(self):
        obs = Observability(mode="full")
        assert Observability.coerce(obs) is obs

    def test_none_means_default(self):
        assert Observability.coerce(None).mode == "metrics"

    def test_string_selects_mode(self):
        assert Observability.coerce("off").mode == "off"
        assert Observability.coerce("full").mode == "full"

    def test_disabled_classmethod(self):
        assert Observability.disabled().mode == "off"


class TestRecordTick:
    def test_samples_histogram_and_counter(self):
        obs = Observability()
        obs.record_tick(0.001)
        obs.record_tick(0.002)
        assert obs.tick_samples_total == 2
        assert list(obs.tick_samples) == [0.001, 0.002]
        assert obs.metrics.value("serena_ticks_total") == 2
        histogram = obs.metrics.get("serena_tick_seconds")
        assert histogram.count == 2
        assert histogram.sum == pytest.approx(0.003)

    def test_sample_ring_bounded(self):
        obs = Observability(tick_sample_capacity=3)
        for index in range(5):
            obs.record_tick(float(index))
        assert list(obs.tick_samples) == [2.0, 3.0, 4.0]
        assert obs.tick_samples_total == 5  # overflow detectable


class TestExport:
    def test_snapshot_shape(self):
        obs = Observability(mode="full")
        with obs.tracer.span("tick", 1):
            pass
        obs.record_tick(0.001)
        snap = obs.snapshot()
        assert snap["mode"] == "full"
        assert "serena_ticks_total" in snap["metrics"]
        assert snap["trace"] == {
            "enabled": True,
            "recorded": 1,
            "retained": 1,
            "dropped": 0,
        }
        json.dumps(snap)  # JSON-serializable end to end

    def test_to_prometheus_includes_tick_histogram(self):
        obs = Observability()
        obs.record_tick(0.001)
        text = obs.to_prometheus()
        assert "# TYPE serena_tick_seconds histogram" in text
        assert "serena_ticks_total 1" in text
