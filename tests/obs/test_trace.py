"""Unit tests for the tick tracer (repro.obs.trace)."""

import json

import pytest

from repro.obs.trace import TRACE_CAPACITY, NullTracer, Span, TickTracer


@pytest.fixture
def tracer():
    return TickTracer()


class TestSpans:
    def test_span_records_name_instant_attributes(self, tracer):
        with tracer.span("tick", 3, engine="shared") as span:
            pass
        assert span.name == "tick"
        assert span.instant == 3
        assert span.attributes == {"engine": "shared"}
        assert tracer.spans == [span]

    def test_duration_measured(self, tracer):
        with tracer.span("tick", 1) as span:
            sum(range(1000))
        assert span.duration > 0.0

    def test_nesting_sets_parent_ids(self, tracer):
        with tracer.span("tick", 1) as outer:
            with tracer.span("queries.tick", 1) as middle:
                with tracer.span("query.evaluate", 1) as inner:
                    pass
        assert outer.parent_id is None
        assert middle.parent_id == outer.span_id
        assert inner.parent_id == middle.span_id
        assert tracer.children(outer) == [middle]
        assert tracer.children(middle) == [inner]

    def test_siblings_share_parent(self, tracer):
        with tracer.span("tick", 1) as parent:
            with tracer.span("a", 1) as a:
                pass
            with tracer.span("b", 1) as b:
                pass
        assert a.parent_id == parent.span_id
        assert b.parent_id == parent.span_id

    def test_span_ids_are_unique_and_increasing(self, tracer):
        spans = []
        for _ in range(3):
            with tracer.span("tick", 1) as s:
                spans.append(s)
        ids = [s.span_id for s in spans]
        assert ids == sorted(ids)
        assert len(set(ids)) == 3

    def test_exception_recorded_as_error_attribute(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("tick", 1) as span:
                raise RuntimeError("boom")
        assert span.attributes["error"] == "RuntimeError"
        assert tracer.spans == [span]  # retained despite the raise
        assert tracer._stack == []  # stack unwound

    def test_events_are_zero_duration_children(self, tracer):
        with tracer.span("tick", 2) as parent:
            event = tracer.event("service.invoke", 2, outcome="success")
        assert event.duration == 0.0
        assert event.parent_id == parent.span_id
        assert event.attributes == {"outcome": "success"}

    def test_top_level_event_has_no_parent(self, tracer):
        event = tracer.event("discovery.event", 1, kind="appeared")
        assert event.parent_id is None


class TestRingBuffer:
    def test_old_spans_evicted(self):
        tracer = TickTracer(capacity=4)
        for index in range(6):
            tracer.event("e", index)
        assert len(tracer) == 4
        assert tracer.recorded == 6
        assert tracer.dropped == 2
        assert [s.instant for s in tracer.spans] == [2, 3, 4, 5]

    def test_default_capacity(self, tracer):
        assert tracer.capacity == TRACE_CAPACITY

    def test_recent(self, tracer):
        for index in range(5):
            tracer.event("e", index)
        assert [s.instant for s in tracer.recent(2)] == [3, 4]
        assert tracer.recent(0) == []
        assert len(tracer.recent(100)) == 5

    def test_for_instant(self, tracer):
        tracer.event("a", 1)
        tracer.event("b", 2)
        tracer.event("c", 2)
        assert [s.name for s in tracer.for_instant(2)] == ["b", "c"]
        assert tracer.for_instant(9) == []

    def test_clear(self, tracer):
        with tracer.span("tick", 1):
            pass
        tracer.clear()
        assert len(tracer) == 0
        assert tracer._stack == []


class TestExport:
    def test_jsonl_round_trip(self, tracer):
        with tracer.span("tick", 3, engine="shared"):
            tracer.event("service.invoke", 3, outcome="success")
        lines = tracer.export_jsonl().strip().split("\n")
        assert len(lines) == 2
        decoded = [json.loads(line) for line in lines]
        assert decoded[0]["name"] == "tick"
        assert decoded[0]["instant"] == 3
        assert decoded[1]["parent_id"] == decoded[0]["span_id"]
        assert decoded[1]["attributes"] == {"outcome": "success"}

    def test_empty_export(self, tracer):
        assert tracer.export_jsonl() == ""

    def test_to_dict_fields(self):
        span = Span(7, 3, "tick", 5, 123.0, {"a": 1})
        assert span.to_dict() == {
            "span_id": 7,
            "parent_id": 3,
            "name": "tick",
            "instant": 5,
            "started_at": 123.0,
            "duration": 0.0,
            "attributes": {"a": 1},
        }


class TestNullTracer:
    def test_everything_is_a_noop(self):
        null = NullTracer()
        assert not null.enabled
        with null.span("tick", 1, x=1) as inner:
            assert inner is None
        assert null.event("e", 1) is None
        assert null.spans == []
        assert null.recent() == []
        assert null.for_instant(1) == []
        assert null.export_jsonl() == ""
        assert len(null) == 0
        assert null.recorded == 0
        assert null.dropped == 0
        null.clear()  # no raise

    def test_shared_context_manager(self):
        null = NullTracer()
        assert null.span("a") is null.span("b")  # no allocation per call
