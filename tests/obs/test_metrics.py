"""Unit tests for the zero-dependency metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs.metrics import (
    DEFAULT_TICK_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        c = registry.counter("serena_things_total")
        assert c.value == 0
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_reset_shim(self, registry):
        c = registry.counter("serena_things_total")
        c.inc(7)
        c.reset()
        assert c.value == 0

    def test_kind(self, registry):
        assert registry.counter("serena_things_total").kind == "counter"


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("serena_depth")
        g.set(10)
        g.inc()
        g.dec(4)
        assert g.value == 7

    def test_kind(self, registry):
        assert registry.gauge("serena_depth").kind == "gauge"


class TestHistogram:
    def test_observe_places_in_first_matching_bucket(self, registry):
        h = registry.histogram("serena_latency_seconds", buckets=(1.0, 2.0))
        h.observe(0.5)  # bucket 0 (<= 1.0)
        h.observe(1.0)  # bucket 0 (inclusive upper bound)
        h.observe(1.5)  # bucket 1
        h.observe(9.0)  # overflow (+Inf)
        assert h.counts == [2, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(12.0)

    def test_mean_and_quantile(self, registry):
        h = registry.histogram("serena_latency_seconds", buckets=(1.0, 2.0))
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0
        for value in (0.5, 0.5, 1.5, 9.0):
            h.observe(value)
        assert h.mean == pytest.approx(11.5 / 4)
        assert h.quantile(0.5) == 1.0  # rank 2 lands in bucket <=1.0
        assert h.quantile(0.75) == 2.0
        assert h.quantile(1.0) == float("inf")  # overflow bucket

    def test_buckets_must_be_strictly_increasing(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("serena_bad_seconds", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("serena_empty_seconds", buckets=())

    def test_default_buckets_when_unspecified(self, registry):
        h = registry.histogram("serena_tick_seconds")
        assert h.buckets == DEFAULT_TICK_BUCKETS


class TestRegistryAddressing:
    def test_same_address_returns_same_instrument(self, registry):
        a = registry.counter("serena_x_total", kind="a")
        again = registry.counter("serena_x_total", kind="a")
        assert a is again

    def test_label_order_is_irrelevant(self, registry):
        a = registry.counter("serena_x_total", a="1", b="2")
        b = registry.counter("serena_x_total", b="2", a="1")
        assert a is b

    def test_distinct_labels_are_distinct_series(self, registry):
        a = registry.counter("serena_x_total", kind="a")
        b = registry.counter("serena_x_total", kind="b")
        assert a is not b
        a.inc(2)
        b.inc(3)
        assert registry.family_total("serena_x_total") == 5

    def test_kind_clash_raises(self, registry):
        registry.counter("serena_x_total")
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("serena_x_total")

    def test_invalid_metric_name_raises(self, registry):
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("serena-bad-name")

    def test_invalid_label_name_raises(self, registry):
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("serena_x_total", **{"bad-label": "v"})

    def test_get_and_value(self, registry):
        registry.counter("serena_x_total", kind="a").inc(5)
        assert registry.get("serena_x_total", kind="a").value == 5
        assert registry.get("serena_x_total", kind="zzz") is None
        assert registry.value("serena_x_total", kind="a") == 5
        assert registry.value("serena_missing_total", default=-1) == -1

    def test_len_and_iter(self, registry):
        registry.counter("serena_a_total")
        registry.gauge("serena_b")
        assert len(registry) == 2
        kinds = sorted(i.kind for i in registry)
        assert kinds == ["counter", "gauge"]


class TestSnapshot:
    def test_counter_and_gauge_series(self, registry):
        registry.counter("serena_x_total", "things", kind="a").inc(2)
        registry.gauge("serena_depth", "depth").set(4)
        snap = registry.snapshot()
        assert snap["serena_x_total"]["kind"] == "counter"
        assert snap["serena_x_total"]["help"] == "things"
        assert snap["serena_x_total"]["series"] == [
            {"labels": {"kind": "a"}, "value": 2}
        ]
        assert snap["serena_depth"]["series"][0]["value"] == 4

    def test_histogram_buckets_are_cumulative_with_inf(self, registry):
        h = registry.histogram("serena_latency_seconds", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 9.0):
            h.observe(value)
        series = registry.snapshot()["serena_latency_seconds"]["series"][0]
        assert series["count"] == 3
        assert series["sum"] == pytest.approx(11.0)
        assert series["buckets"] == {"1": 1, "2": 2, "+Inf": 3}

    def test_snapshot_is_json_serializable(self, registry):
        import json

        registry.histogram("serena_latency_seconds", buckets=(1.0,)).observe(0.5)
        registry.counter("serena_x_total", kind="a").inc()
        json.dumps(registry.snapshot())


class TestPrometheusText:
    def test_help_type_and_sample_lines(self, registry):
        registry.counter("serena_x_total", "Things seen", kind="a").inc(2)
        text = registry.to_prometheus()
        assert "# HELP serena_x_total Things seen\n" in text
        assert "# TYPE serena_x_total counter\n" in text
        assert 'serena_x_total{kind="a"} 2\n' in text

    def test_label_value_escaping(self, registry):
        registry.counter("serena_x_total", kind='we"ird\\\n').inc()
        text = registry.to_prometheus()
        assert 'kind="we\\"ird\\\\\\n"' in text

    def test_histogram_rendering(self, registry):
        h = registry.histogram(
            "serena_latency_seconds", "Latency", buckets=(1.0, 2.0)
        )
        for value in (0.5, 1.5, 9.0):
            h.observe(value)
        text = registry.to_prometheus()
        assert "# TYPE serena_latency_seconds histogram" in text
        assert 'serena_latency_seconds_bucket{le="1"} 1\n' in text
        assert 'serena_latency_seconds_bucket{le="2"} 2\n' in text
        assert 'serena_latency_seconds_bucket{le="+Inf"} 3\n' in text
        assert "serena_latency_seconds_sum 11" in text
        assert "serena_latency_seconds_count 3\n" in text

    def test_empty_registry_renders_empty(self, registry):
        assert registry.to_prometheus() == ""

    def test_unlabeled_sample_has_no_braces(self, registry):
        registry.counter("serena_ticks_total").inc()
        assert "serena_ticks_total 1\n" in registry.to_prometheus()


class TestBareInstruments:
    """The instrument classes work standalone (hot-path handles)."""

    def test_counter_constructor(self):
        c = Counter("serena_x_total", ())
        c.inc()
        assert c.value == 1

    def test_gauge_constructor(self):
        g = Gauge("serena_x", ())
        g.set(2)
        assert g.value == 2

    def test_histogram_constructor(self):
        h = Histogram("serena_x_seconds", (), (1.0,))
        h.observe(0.1)
        assert h.count == 1
