"""Tests for EXPLAIN ANALYZE and the physical-plan renderer
(repro.obs.analyze via lang/printer)."""

import pytest

from repro.devices.scenario import build_temperature_surveillance
from repro.lang.printer import explain_analyze, explain_physical
from repro.obs.analyze import analyze_rows


@pytest.fixture(scope="module")
def scenario():
    built = build_temperature_surveillance(engine="shared", observe="metrics")
    built.run(5)
    return built


class TestAnalyzeRows:
    def test_rows_cover_every_executor_once(self, scenario):
        alerts = scenario.queries["alerts"]
        rows = analyze_rows(alerts)
        real = [r for r in rows if not r["repeat"]]
        assert len(real) == len(alerts.executors())
        assert [r["index"] for r in real] == list(range(len(real)))
        assert rows[0]["depth"] == 0

    def test_shared_rows_carry_refcounts(self, scenario):
        rows = analyze_rows(scenario.queries["alerts"])
        shared = [r for r in rows if not r["repeat"] and r["shared"]]
        # Both registered queries lease the temperature-window subplan.
        assert shared
        assert any(r["refcount"] >= 2 for r in shared)
        private = [r for r in rows if not r["repeat"] and not r["shared"]]
        assert all(r["refcount"] is None for r in private)

    def test_delta_cardinalities_accumulate(self, scenario):
        rows = analyze_rows(scenario.queries["alerts"])
        scans = [r for r in rows if r.get("executor") == "ScanExec"]
        assert scans
        # The temperature stream inserts 4 tuples per tick for 5 ticks.
        stream_scan = next(
            r for r in scans if "temperatures" in r["operator"]
        )
        assert stream_scan["ticks"] == 5
        assert stream_scan["output_inserted"] == 20
        assert stream_scan["rows_scanned"] >= 20

    def test_invocation_rows_expose_outcome_counts(self, scenario):
        rows = analyze_rows(scenario.queries["alerts"])
        invocations = [r for r in rows if "invocations" in r]
        assert invocations
        for row in invocations:
            for key in ("invocations", "memo_hits", "fast_failed", "failures"):
                assert row[key] >= 0

    def test_naive_engine_has_no_physical_plan(self):
        built = build_temperature_surveillance(engine="naive", observe="off")
        built.run(2)
        assert analyze_rows(built.queries["alerts"]) == []
        text = explain_analyze(built.queries["alerts"])
        assert "no physical plan" in text


class TestRenderAnalyze:
    def test_header_and_rows(self, scenario):
        text = explain_analyze(scenario.queries["alerts"])
        assert text.startswith("EXPLAIN ANALYZE alerts")
        assert "engine=shared" in text
        assert "last instant=5" in text
        assert "shared(refs=" in text
        assert "ticks=5" in text
        assert "in Δ+" in text and "out Δ+" in text

    def test_sharing_summary_line(self, scenario):
        text = explain_analyze(scenario.queries["alerts"])
        summary = scenario.queries["alerts"].sharing_summary
        assert f"{summary['executors']} executors" in text
        assert f"{summary['shared']} shared / {summary['private']} private" in text


class TestRenderPhysical:
    def test_registered_plan_shows_shared_subtrees(self, scenario):
        registry = scenario.pems.queries.shared
        text = explain_physical(scenario.queries["alerts"].query, registry)
        assert "[ScanExec/row]" in text
        assert "shared(refs=" in text

    def test_columnar_backend_is_rendered(self, scenario):
        text = explain_physical(
            scenario.queries["alerts"].query, backend="columnar"
        )
        assert "[ColumnarScanExec/columnar]" in text
        # β keeps its row executor under the columnar backend.
        assert "/row]" in text

    def test_unregistered_operator_is_private_over_shared_scan(self, scenario):
        from repro.lang.sql import compile_sql

        query = compile_sql(
            "SELECT * FROM contacts WHERE name = 'Carla'",
            scenario.pems.environment,
        )
        text = explain_physical(query, scenario.pems.queries.shared)
        lines = text.splitlines()
        # No registered query runs this selection: its root is private —
        # but the bare contacts scan under it is already leased.
        assert "private" in lines[0]
        assert any("scan(contacts)" in l and "shared(refs=" in l for l in lines)

    def test_without_registry_everything_private(self, scenario):
        text = explain_physical(scenario.queries["alerts"].query)
        assert "shared(refs=" not in text
        assert "private" in text
