"""Tests for the PEMS facade: wiring, tick ordering, stream sources."""

import pytest

from repro.devices.prototypes import GET_TEMPERATURE, STANDARD_PROTOTYPES
from repro.devices.scenario import sensors_schema, temperatures_schema
from repro.devices.sensors import SensorStreamFeeder, TemperatureSensor
from repro.pems.pems import PEMS


@pytest.fixture
def pems():
    system = PEMS()
    for prototype in STANDARD_PROTOTYPES:
        system.environment.declare_prototype(prototype)
    return system


class TestWiring:
    def test_components_share_clock_and_environment(self, pems):
        assert pems.erm.clock is pems.clock
        assert pems.tables.environment is pems.environment
        assert pems.queries.environment is pems.environment
        assert pems.erm.registry is pems.environment.registry

    def test_local_erm_creation_is_idempotent(self, pems):
        a = pems.create_local_erm("floor")
        b = pems.create_local_erm("floor")
        assert a is b
        assert pems.local_erms == {"floor": a}

    def test_custom_lease(self, pems):
        local = pems.create_local_erm("short", lease=2)
        assert local.lease == 2

    def test_tick_and_run(self, pems):
        assert pems.tick() == 1
        assert pems.run(4) == 5
        assert pems.clock.now == 5

    def test_describe_includes_queries(self, pems):
        from repro.algebra import scan

        pems.tables.create_relation(sensors_schema())
        pems.queries.register_continuous(
            scan(pems.environment, "sensors").query(), name="watch"
        )
        text = pems.describe()
        assert "watch: sensors" in text
        assert "-- Continuous queries --" in text


class TestStreamSources:
    def test_sources_run_before_queries(self, pems):
        """A continuous query at instant τ must see tuples the sources
        pushed at τ."""
        pems.tables.create_relation(temperatures_schema(), infinite=True)
        pems.tables.create_relation(sensors_schema())
        pems.create_local_erm("field").register(
            TemperatureSensor("s1", "office").as_service()
        )
        pems.queries.register_discovery("getTemperature", "sensors", "sensor")
        pems.add_stream_source(
            SensorStreamFeeder(
                pems.environment.registry,
                lambda rows: pems.tables.insert("temperatures", rows),
            )
        )
        from repro.algebra import scan

        cq = pems.queries.register_continuous(
            scan(pems.environment, "temperatures").window(1).query(), name="w"
        )
        pems.run(1)
        assert len(cq.last_result.relation) == 1

    def test_feeder_period(self, pems):
        pems.tables.create_relation(temperatures_schema(), infinite=True)
        pems.create_local_erm("field").register(
            TemperatureSensor("s1", "office").as_service()
        )
        pems.add_stream_source(
            SensorStreamFeeder(
                pems.environment.registry,
                lambda rows: pems.tables.insert("temperatures", rows),
                period=3,
            )
        )
        pems.run(6)
        stream = pems.environment.relation("temperatures")
        assert len(stream) == 2  # instants 3 and 6

    def test_execute_ddl_routes_to_table_manager(self, pems):
        results = pems.execute_ddl(
            "EXTENDED RELATION things ( thing SERVICE, label STRING );"
        )
        assert len(results) == 1
        assert "things" in pems.environment


class TestTickOrdering:
    def test_erm_reaps_before_queries_see_the_instant(self, pems):
        """A crashed service's lease expiry and the discovery-table sync
        happen within the same tick, before continuous queries run."""
        pems.tables.create_relation(sensors_schema())
        local = pems.create_local_erm("field", lease=2)
        local.register(TemperatureSensor("s1", "office").as_service())
        pems.queries.register_discovery("getTemperature", "sensors", "sensor")
        from repro.algebra import scan

        cq = pems.queries.register_continuous(
            scan(pems.environment, "sensors").query(), name="sensors-watch"
        )
        pems.run(1)
        assert len(cq.last_result.relation) == 1
        local.crash()
        pems.run(6)
        assert len(cq.last_result.relation) == 0
