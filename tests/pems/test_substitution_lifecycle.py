"""Lifecycle of semantic substitution bindings (DESIGN.md §13).

The interplay under test: a quarantined-then-substituted service must
*stay* substituted — re-admission on probation never reclaims a binding
that was rebound away; only the substitute's own failure (or an explicit
goodbye) releases it.  Alongside: the lease-expiry rebind path with its
self-renewing lease, and failover serving the crash instant itself.
"""

import pytest

from repro.algebra import scan
from repro.devices.faults import FaultInjector, FaultScript
from repro.devices.prototypes import STANDARD_PROTOTYPES, GET_ENV_READING
from repro.devices.scenario import sensors_schema
from repro.devices.sensors import EnvironmentalSensor, TemperatureSensor
from repro.model.invocation_policy import HealthState, InvocationPolicy
from repro.model.substitution import SubstitutionRule
from repro.pems.pems import PEMS

POLICY = InvocationPolicy(failure_threshold=1, quarantine_backoff=6)
#: s2 dies for good at instant 3.
PERMANENT = FaultScript(crash_at=3)
#: s2 is down over [3, 6) and then recovers — the probation scenario.
TEMPORARY = FaultScript(crash_windows=((3, 6),))

RULE = SubstitutionRule.specializes(
    "getTemperature", "spare", "getEnvReading", reference="s2"
)


def build_pems(script=PERMANENT, policy=POLICY, with_spare=True, rules=(RULE,)):
    pems = PEMS(engine="shared", policy=policy)
    for prototype in STANDARD_PROTOTYPES:
        pems.environment.declare_prototype(prototype)
    pems.environment.declare_prototype(GET_ENV_READING)
    pems.tables.create_relation(sensors_schema())
    field = pems.create_local_erm("field")
    field.register(TemperatureSensor("s1", "office").as_service())
    faulty = FaultInjector(
        TemperatureSensor("s2", "kitchen", base=30.0).as_service(),
        script,
        seed="sub",
    )
    field.register(faulty.as_service())
    spare = EnvironmentalSensor("spare", "kitchen", base=12.0)
    if with_spare:
        field.register(spare.as_service())
    for rule in rules:
        pems.declare_substitution(rule)
    pems.queries.register_discovery("getTemperature", "sensors", "sensor")
    # β∞ re-invokes every sensor at every instant: it both observes the
    # crash (driving the health tracker) and carries per-instant readings
    # for the zero-missed-ticks assertions.
    cq = pems.queries.register_continuous(
        scan(pems.environment, "sensors")
        .invoke_stream("getTemperature", on_error="degrade")
        .query(),
        name="probe",
    )
    return pems, cq, spare


def sensors_extent(pems):
    rows = pems.environment.instantaneous("sensors", pems.clock.now)
    return sorted(row[0] for row in rows)


def reading_of(cq, reference):
    rows = [row for row in cq.last_result.relation if row[0] == reference]
    assert len(rows) == 1, rows
    return rows[-1][-1]


def bound_keys(pems):
    return sorted(pems.environment.registry.substitutions.bindings)


class TestQuarantineRebind:
    def test_crash_heals_in_place_with_zero_missed_ticks(self):
        pems, cq, spare = build_pems()
        pems.run(2)
        assert sensors_extent(pems) == ["s1", "s2"]
        for instant in range(3, 15):
            pems.run(1)
            # Every single instant of the outage reports a reading for s2
            # — instant 3 itself via the failover table, 4+ via the
            # sticky binding.
            assert sorted(row[0] for row in cq.last_result.relation) == [
                "s1",
                "s2",
            ], f"missed tick at {instant}"
        # The binding was installed by the sweep one instant after the
        # quarantine, and s2's rows now carry the spare's readings.
        assert bound_keys(pems) == [("getTemperature", "s2")]
        assert reading_of(cq, "s2") == pytest.approx(
            spare.temperature(pems.clock.now), abs=1e-9
        )
        # Healed in place: never parked, discovery rows intact.
        assert pems.erm.parked == frozenset()
        assert sensors_extent(pems) == ["s1", "s2"]
        kinds = [(e.kind, e.service.reference) for e in pems.erm.events]
        assert ("rebound", "s2") in kinds
        assert ("quarantined", "s2") not in kinds

    def test_rebind_latency_within_backoff_plus_one(self):
        pems, _, _ = build_pems()
        pems.run(20)
        report = pems.erm.substitution_report()
        assert report["history"], report
        first = report["history"][0]
        # Crash at 3 trips the threshold at 3; the sweep rebinds at 4 —
        # one tick, far below quarantine_backoff + 1.
        assert first.startswith("@4 getTemperature[s2]")
        assert "(quarantine)" in first

    def test_without_rules_quarantine_parks_as_before(self):
        pems, cq, _ = build_pems(rules=())
        pems.run(6)
        assert pems.erm.parked == frozenset({"s2"})
        assert sensors_extent(pems) == ["s1"]


class TestStickyProbationInterplay:
    def test_recovered_original_does_not_reclaim_binding(self):
        pems, cq, spare = build_pems(script=TEMPORARY)
        pems.run(30)
        # The crash window ended at 6; with backoff 6 an unsubstituted s2
        # would have been re-admitted around instant 9.  Bound, it stays
        # frozen out: never probed, never back on probation, readings
        # still the spare's.
        assert bound_keys(pems) == [("getTemperature", "s2")]
        assert pems.environment.registry.health.state("s2") is (
            HealthState.QUARANTINED
        )
        assert pems.erm.parked == frozenset()
        assert reading_of(cq, "s2") == pytest.approx(
            spare.temperature(pems.clock.now), abs=1e-9
        )
        kinds = [(e.kind, e.service.reference) for e in pems.erm.events]
        assert ("quarantined", "s2") not in kinds

    def test_substitute_failure_releases_then_probation_self_heals(self):
        pems, cq, _ = build_pems(script=FaultScript(crash_windows=((3, 14),)))
        pems.run(10)  # bound at 4; s2 still down until 14
        assert bound_keys(pems) == [("getTemperature", "s2")]
        # The spare says goodbye: the sweep drops the binding at 11; the
        # immediate half-open probe still fails (fresh quarantine stamp),
        # so with no other candidate s2 finally parks at 12 — and,
        # backoff later, re-enters on probation with the window over.
        pems.local_erms["field"].deregister("spare")
        pems.run(2)
        assert bound_keys(pems) == []
        assert pems.erm.parked == frozenset({"s2"})
        pems.run(12)  # released at 17: re-quarantined at 11, backoff 6
        assert pems.erm.parked == frozenset()
        assert "s2" in pems.environment.registry
        assert sensors_extent(pems) == ["s1", "s2"]
        # Readings are s2's own again (base 30, not the spare's 12).
        assert reading_of(cq, "s2") > 20.0
        history = pems.erm.substitution_report()["history"]
        assert any("(substitute-failed)" in line for line in history)

    def test_goodbye_of_the_original_releases_the_binding(self):
        pems, _, _ = build_pems()
        pems.run(10)
        assert bound_keys(pems) == [("getTemperature", "s2")]
        pems.local_erms["field"].deregister("s2")
        pems.run(1)
        assert bound_keys(pems) == []
        assert "s2" not in pems.environment.registry
        history = pems.erm.substitution_report()["history"]
        assert any("(left)" in line for line in history)


class TestLeaseExpiryRebind:
    def test_silent_crash_rebinds_and_self_renews_the_lease(self):
        pems = PEMS(engine="shared", policy=POLICY)
        for prototype in STANDARD_PROTOTYPES:
            pems.environment.declare_prototype(prototype)
        pems.environment.declare_prototype(GET_ENV_READING)
        pems.tables.create_relation(sensors_schema())
        # Two Local ERMs: the sensor's crashes silently (no BYE), the
        # spare's stays up.
        dying = pems.create_local_erm("dying", lease=4)
        dying.register(TemperatureSensor("s2", "kitchen").as_service())
        depot = pems.create_local_erm("depot")
        depot.register(EnvironmentalSensor("spare", "kitchen").as_service())
        pems.declare_substitution(RULE)
        pems.queries.register_discovery("getTemperature", "sensors", "sensor")
        pems.run(2)
        assert sensors_extent(pems) == ["s2"]
        dying.crash()
        pems.run(10)
        # The lease ran out unrenewed; instead of expiring, s2 was
        # rebound and its lease self-renews while bound.
        assert bound_keys(pems) == [("getTemperature", "s2")]
        assert "s2" in pems.environment.registry
        assert sensors_extent(pems) == ["s2"]
        history = pems.erm.substitution_report()["history"]
        assert any("(lease-expiry)" in line for line in history)
        assert all(e.kind != "expired" for e in pems.erm.events)


class TestFailoverTable:
    def test_failover_precomputed_for_substitutable_pairs(self):
        pems, _, _ = build_pems()
        pems.run(2)  # before the crash
        report = pems.erm.substitution_report()
        assert report["failover"] == {
            "getTemperature[s2]": ["specializes spare/getEnvReading"]
        }
        assert report["bindings"] == {}

    def test_bound_pairs_leave_the_failover_table(self):
        pems, _, _ = build_pems()
        pems.run(10)
        report = pems.erm.substitution_report()
        assert report["failover"] == {}
        assert list(report["bindings"]) == ["getTemperature[s2]"]
