"""Tests for the Query Processor: one-shot, continuous and discovery
queries driven by the PEMS tick loop."""

import pytest

from repro.algebra import col, scan
from repro.devices.prototypes import GET_TEMPERATURE, STANDARD_PROTOTYPES
from repro.devices.scenario import sensors_schema
from repro.devices.sensors import TemperatureSensor
from repro.errors import SerenaError, UnknownAttributeError
from repro.pems.pems import PEMS


@pytest.fixture
def pems():
    system = PEMS()
    for prototype in STANDARD_PROTOTYPES:
        system.environment.declare_prototype(prototype)
    system.tables.create_relation(sensors_schema())
    return system


def plug_sensor(pems, reference, location="office"):
    local = pems.create_local_erm("field")
    local.register(TemperatureSensor(reference, location).as_service())


class TestOneShot:
    def test_execute_at_current_instant(self, pems):
        plug_sensor(pems, "sensor01")
        pems.queries.register_discovery("getTemperature", "sensors", "sensor")
        pems.run(2)
        result = pems.queries.execute(
            scan(pems.environment, "sensors").invoke("getTemperature").query()
        )
        assert result.instant == 2
        assert len(result.relation) == 1


class TestContinuousRegistration:
    def test_registered_queries_run_each_tick(self, pems):
        cq = pems.queries.register_continuous(
            scan(pems.environment, "sensors").query(), name="watch"
        )
        pems.run(3)
        assert cq.last_result is not None
        assert cq.last_result.instant == 3

    def test_duplicate_name_rejected(self, pems):
        pems.queries.register_continuous(
            scan(pems.environment, "sensors").query(), name="watch"
        )
        with pytest.raises(SerenaError, match="already registered"):
            pems.queries.register_continuous(
                scan(pems.environment, "sensors").query(), name="watch"
            )

    def test_deregister_stops_evaluation(self, pems):
        cq = pems.queries.register_continuous(
            scan(pems.environment, "sensors").query(), name="watch"
        )
        pems.run(1)
        pems.queries.deregister_continuous("watch")
        last = cq.last_result
        pems.run(2)
        assert cq.last_result is last

    def test_lookup(self, pems):
        cq = pems.queries.register_continuous(
            scan(pems.environment, "sensors").query(), name="watch"
        )
        assert pems.queries.continuous_query("watch") is cq
        with pytest.raises(SerenaError):
            pems.queries.continuous_query("ghost")


class TestDiscoveryQueries:
    def test_initial_sync(self, pems):
        plug_sensor(pems, "sensor01")
        pems.queries.register_discovery("getTemperature", "sensors", "sensor")
        relation = pems.environment.instantaneous("sensors", pems.clock.now)
        assert relation.column("sensor") == ["sensor01"]

    def test_new_service_appears_in_table(self, pems):
        pems.queries.register_discovery("getTemperature", "sensors", "sensor")
        plug_sensor(pems, "sensor01", "corridor")
        pems.run(1)
        relation = pems.environment.instantaneous("sensors", pems.clock.now)
        (row,) = relation.to_mappings()
        assert row == {"sensor": "sensor01", "location": "corridor"}

    def test_departed_service_removed(self, pems):
        plug_sensor(pems, "sensor01")
        pems.queries.register_discovery("getTemperature", "sensors", "sensor")
        pems.run(1)
        pems.create_local_erm("field").deregister("sensor01")
        pems.run(1)
        assert len(pems.environment.instantaneous("sensors", pems.clock.now)) == 0

    def test_crashed_service_reaped_via_lease(self, pems):
        local = pems.create_local_erm("field", lease=4)
        local.register(TemperatureSensor("sensor01", "office").as_service())
        pems.queries.register_discovery("getTemperature", "sensors", "sensor")
        local.crash()
        pems.run(12)
        assert len(pems.environment.instantaneous("sensors", pems.clock.now)) == 0

    def test_service_attribute_must_exist(self, pems):
        with pytest.raises(UnknownAttributeError):
            pems.queries.register_discovery("getTemperature", "sensors", "nope")

    def test_custom_row_builder(self, pems):
        plug_sensor(pems, "sensor01", "corridor")
        pems.queries.register_discovery(
            "getTemperature",
            "sensors",
            "sensor",
            row_builder=lambda service: {
                "sensor": service.reference,
                "location": "everywhere",
            },
        )
        relation = pems.environment.instantaneous("sensors", pems.clock.now)
        assert relation.column("location") == ["everywhere"]

    def test_continuous_query_sees_updated_table_without_restart(self, pems):
        """The Section 5.2 experiment: new sensors integrate into running
        queries without stopping them."""
        pems.queries.register_discovery("getTemperature", "sensors", "sensor")
        cq = pems.queries.register_continuous(
            scan(pems.environment, "sensors").invoke("getTemperature").query(),
            name="all-temps",
        )
        plug_sensor(pems, "sensor01")
        pems.run(1)
        assert len(cq.last_result.relation) == 1
        plug_sensor(pems, "sensor02")
        pems.run(1)
        assert len(cq.last_result.relation) == 2


class TestFailureRetention:
    """The failure log is bounded (one flaky service must not grow it
    without limit) and clearable."""

    def doomed_query(self, pems):
        # A sensors row whose service was never registered: evaluation
        # raises every tick (on_error defaults to 'raise').
        pems.tables.insert("sensors", [{"sensor": "ghost", "location": "void"}])
        query = (
            scan(pems.environment, "sensors").invoke("getTemperature").query("doomed")
        )
        pems.queries.register_continuous(query)

    def test_failure_log_is_capped(self, pems):
        from repro.pems.query_processor import FAILURE_LOG_SIZE

        self.doomed_query(pems)
        overflow = 10
        pems.run(FAILURE_LOG_SIZE + overflow)
        failures = pems.queries.failures
        assert len(failures) == FAILURE_LOG_SIZE
        # Oldest entries were dropped silently; newest retained.
        assert failures[0].instant == overflow + 1
        assert failures[-1].instant == FAILURE_LOG_SIZE + overflow
        assert all(f.query_name == "doomed" for f in failures)

    def test_clear_failures(self, pems):
        self.doomed_query(pems)
        pems.run(3)
        assert len(pems.queries.failures) == 3
        pems.queries.clear_failures()
        assert pems.queries.failures == []
        pems.run(1)
        assert len(pems.queries.failures) == 1


class TestSharedDeregistration:
    """Satellite coverage: deregistering one query of a shared plan
    releases only its own refcounts; co-owned subplans keep running."""

    def watch(self, pems, name):
        return pems.queries.register_continuous(
            scan(pems.environment, "sensors")
            .select(col("location").ne("void"))
            .query(),
            name=name,
        )

    def churn(self, pems, instant):
        pems.tables.insert(
            "sensors", [{"sensor": f"s{instant}", "location": f"room{instant}"}]
        )

    def test_deregister_releases_only_own_refcounts(self, pems):
        registry = pems.queries.shared
        self.watch(pems, "a")
        counts_single = dict(registry.refcounts())
        assert counts_single and all(c == 1 for c in counts_single.values())
        self.watch(pems, "b")
        assert all(c == 2 for c in registry.refcounts().values())
        pems.queries.deregister_continuous("a")
        assert dict(registry.refcounts()) == counts_single
        pems.queries.deregister_continuous("b")
        assert len(registry) == 0  # no leaked entries

    def test_survivor_keeps_running_after_co_owner_leaves(self, pems):
        a = self.watch(pems, "a")
        b = self.watch(pems, "b")
        oracle = pems.queries.register_continuous(
            scan(pems.environment, "sensors")
            .select(col("location").ne("void"))
            .query(),
            name="oracle",
            engine="naive",
        )
        self.churn(pems, 0)
        pems.run(2)
        pems.queries.deregister_continuous("a")
        for _ in range(3):
            self.churn(pems, pems.clock.now)
            pems.run(1)
            assert (
                b.last_result.relation.tuples
                == oracle.last_result.relation.tuples
            )
            delta = b.last_reported_delta
            naive_delta = oracle.last_reported_delta
            assert frozenset(delta.inserted) == frozenset(naive_delta.inserted)
            assert frozenset(delta.deleted) == frozenset(naive_delta.deleted)
        assert a.last_result.instant < pems.clock.now  # a stopped ticking

    def test_reregistered_identical_query_reshares(self, pems):
        b = self.watch(pems, "b")
        self.watch(pems, "a")
        pems.run(2)
        pems.queries.deregister_continuous("a")
        a2 = self.watch(pems, "a")
        assert a2.sharing_summary["shared"] > 0
        shared_ids = {id(e) for e in b.executors()}
        assert any(id(e) in shared_ids for e in a2.executors())
        self.churn(pems, pems.clock.now)
        pems.run(1)
        assert a2.last_result.relation.tuples == b.last_result.relation.tuples

    def test_sharing_summary_shape(self, pems):
        a = self.watch(pems, "a")
        summary = a.sharing_summary
        assert summary["executors"] == summary["shared"] + summary["private"]
        assert summary["fingerprint"]
        assert all(
            lease["refcount"] >= 1 and lease["operator"] for lease in summary["leases"]
        )


class TestInstantInvocationMemo:
    """Identical invocations issued by different queries within one tick
    reach the device once (per-instant memo in the service registry)."""

    def test_duplicate_queries_invoke_once(self, pems):
        plug_sensor(pems, "sensor01")
        pems.queries.register_discovery("getTemperature", "sensors", "sensor")
        query = scan(pems.environment, "sensors").invoke("getTemperature")
        a = pems.queries.register_continuous(query.query(), name="a")
        # Same call shape, different (unshareable) private β executor:
        b = pems.queries.register_continuous(
            query.project("sensor", "temperature").query(), name="b"
        )
        registry = pems.environment.registry
        before = registry.invocation_count
        pems.run(1)
        assert registry.invocation_count == before + 1
        assert registry.memo_hits >= 1
        assert a.last_result.relation.tuples
        assert b.last_result.relation.tuples
        # Outside the tick loop the memo is off: a one-shot invocation
        # issued between ticks reaches the device again.
        result = pems.queries.execute(query.query())
        assert registry.invocation_count == before + 2
        assert len(result.relation) == 1


class TestEngineSelection:
    def test_per_query_engine_override(self, pems):
        plug_sensor(pems, "sensor01")
        default = pems.queries.register_continuous(
            scan(pems.environment, "sensors").query(), name="default-engine"
        )
        naive = pems.queries.register_continuous(
            scan(pems.environment, "sensors").query(),
            name="naive-engine",
            engine="naive",
        )
        assert default.engine == "shared"
        assert naive.engine == "naive"
        pems.run(2)
        assert (
            default.last_result.relation.tuples == naive.last_result.relation.tuples
        )

    def test_unknown_engine_rejected(self, pems):
        with pytest.raises(SerenaError, match="unknown execution engine"):
            pems.queries.register_continuous(
                scan(pems.environment, "sensors").query(), engine="quantum"
            )
