"""Quarantine-as-lease-expiry: a service crossing its failure threshold
leaves the environment's XD-Relations and is re-admitted on recovery,
while on_error="degrade" queries keep serving healthy providers.

Failure observation rides on a streaming binding pattern (β∞ re-invokes
every instant, like the temperatures feed of §5.2); the plain β query
demonstrates graceful degradation — its cached rows for the quarantined
provider are dropped by the discovery sync and restored on re-admission.
"""

import pytest

from repro.algebra import scan
from repro.devices.faults import FaultInjector, FaultScript
from repro.devices.prototypes import STANDARD_PROTOTYPES
from repro.devices.scenario import sensors_schema
from repro.devices.sensors import TemperatureSensor
from repro.model.invocation_policy import HealthState, InvocationPolicy
from repro.pems.pems import PEMS

POLICY = InvocationPolicy(failure_threshold=1, quarantine_backoff=6)
CRASH = FaultScript(crash_windows=((3, 6),))


def build_pems(engine="shared", policy=POLICY, script=CRASH):
    pems = PEMS(engine=engine, policy=policy)
    for prototype in STANDARD_PROTOTYPES:
        pems.environment.declare_prototype(prototype)
    pems.tables.create_relation(sensors_schema())
    field = pems.create_local_erm("field")
    field.register(TemperatureSensor("s1", "office").as_service())
    faulty = FaultInjector(
        TemperatureSensor("s2", "kitchen").as_service(), script, seed="q"
    )
    field.register(faulty.as_service())
    pems.queries.register_discovery("getTemperature", "sensors", "sensor")
    # β∞ re-invokes every sensor at every instant: the probe that makes
    # the crash window visible to the health tracker.
    pems.queries.register_continuous(
        scan(pems.environment, "sensors")
        .invoke_stream("getTemperature", on_error="degrade")
        .query(),
        name="probe",
    )
    return pems, faulty


def sensors_extent(pems):
    rows = pems.environment.instantaneous("sensors", pems.clock.now)
    return sorted(row[0] for row in rows)


@pytest.mark.parametrize("engine", ["shared", "incremental", "naive"])
class TestQuarantineLifecycle:
    def test_removed_within_one_lease_and_readmitted(self, engine):
        pems, _ = build_pems(engine)
        cq = pems.queries.register_continuous(
            scan(pems.environment, "sensors")
            .invoke("getTemperature", on_error="degrade")
            .query(),
            name="temps",
        )
        pems.run(2)
        assert sensors_extent(pems) == ["s1", "s2"]
        assert len(cq.last_result.relation) == 2

        # Crash window [3, 6): the probe's failure at 3 trips the
        # threshold; the ERM sweeps the quarantine at 4 — well within one
        # lease period (6).
        pems.run(1)  # instant 3
        assert pems.environment.registry.health.state("s2") is (
            HealthState.QUARANTINED
        )
        pems.run(1)  # instant 4: swept out of registry + sensors extent
        assert sensors_extent(pems) == ["s1"]
        assert pems.erm.parked == frozenset({"s2"})
        kinds = [(e.kind, e.service.reference) for e in pems.erm.events]
        assert ("quarantined", "s2") in kinds

        # Degrade: the query keeps emitting the healthy provider's rows
        # throughout the outage.
        assert [row[0] for row in cq.last_result.relation] == ["s1"]

        # Re-admission: quarantined_at=3, backoff=6 → released at 9; the
        # crash window ended at 6, so the retry succeeds.
        pems.run(5)  # instants 5..9
        assert pems.erm.parked == frozenset()
        assert sensors_extent(pems) == ["s1", "s2"]
        appeared = [
            e.instant
            for e in pems.erm.events
            if e.kind == "appeared" and e.service.reference == "s2"
        ]
        assert appeared[-1] == 9
        assert sorted(row[0] for row in cq.last_result.relation) == ["s1", "s2"]
        assert pems.environment.registry.health.state("s2") is HealthState.UP

    def test_healthy_rows_flow_every_instant_of_the_outage(self, engine):
        pems, _ = build_pems(engine)
        cq = pems.queries.register_continuous(
            scan(pems.environment, "sensors")
            .invoke("getTemperature", on_error="degrade")
            .query(),
            name="temps",
        )
        for _ in range(12):
            pems.run(1)
            assert "s1" in [row[0] for row in cq.last_result.relation]


class TestQuarantineMechanics:
    def test_alive_announcements_suppressed_while_parked(self):
        pems, _ = build_pems()
        pems.run(4)  # quarantined at 3, swept at 4
        assert pems.erm.parked == frozenset({"s2"})
        # The field Local ERM keeps renewing s2 (it knows nothing of the
        # quarantine), yet s2 must stay out of the registry until release.
        pems.run(2)  # a renewal cadence passes
        assert "s2" not in pems.environment.registry
        assert pems.erm.parked == frozenset({"s2"})

    def test_bye_while_parked_drops_the_service_for_good(self):
        pems, _ = build_pems()
        pems.run(4)
        assert pems.erm.parked == frozenset({"s2"})
        pems.local_erms["field"].deregister("s2")
        pems.run(1)
        assert pems.erm.parked == frozenset()
        assert "s2" not in pems.environment.registry.health.known()
        pems.run(8)  # long past the would-be release: never re-admitted
        assert "s2" not in pems.environment.registry

    def test_still_broken_service_requarantines_on_probe(self):
        pems, _ = build_pems(
            policy=InvocationPolicy(failure_threshold=1, quarantine_backoff=3),
            script=FaultScript(crash_windows=((0, 1000),)),
        )
        # A degrade β query alongside the probe: its s2 tuple fails once
        # per re-admission, is parked, and never spams retries.
        pems.queries.register_continuous(
            scan(pems.environment, "sensors")
            .invoke("getTemperature", on_error="degrade")
            .query(),
            name="temps",
        )
        pems.run(20)
        # The service cycles: probe fails → re-quarantined → parked again.
        quarantines = [
            e.instant for e in pems.erm.events if e.kind == "quarantined"
        ]
        assert len(quarantines) >= 3
        assert pems.environment.registry.health.state("s2") is (
            HealthState.QUARANTINED
        )
        assert pems.queries.failures == []  # degrade/skip: never fatal

    def test_no_policy_means_no_quarantine(self):
        pems, _ = build_pems(policy=None)
        pems.run(12)
        assert pems.erm.parked == frozenset()
        assert all(e.kind != "quarantined" for e in pems.erm.events)
        assert sensors_extent(pems) == ["s1", "s2"]
