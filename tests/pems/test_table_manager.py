"""Tests for the Extended Table Manager."""

import pytest

from repro.continuous.time import VirtualClock
from repro.devices.scenario import contacts_schema, temperatures_schema
from repro.errors import EnvironmentError_
from repro.model.environment import PervasiveEnvironment
from repro.model.relation import XRelation
from repro.pems.table_manager import ExtendedTableManager


@pytest.fixture
def rig():
    clock = VirtualClock()
    env = PervasiveEnvironment()
    return clock, env, ExtendedTableManager(env, clock)


class TestLifecycle:
    def test_create_registers_in_environment(self, rig):
        clock, env, tables = rig
        relation = tables.create_relation(contacts_schema())
        assert "contacts" in env
        assert not relation.infinite

    def test_create_stream(self, rig):
        _, env, tables = rig
        relation = tables.create_relation(temperatures_schema(), infinite=True)
        assert relation.infinite

    def test_duplicate_name_rejected(self, rig):
        _, _, tables = rig
        tables.create_relation(contacts_schema())
        with pytest.raises(EnvironmentError_, match="already exists"):
            tables.create_relation(contacts_schema())

    def test_anonymous_schema_needs_name(self, rig):
        _, _, tables = rig
        with pytest.raises(EnvironmentError_, match="needs a name"):
            tables.create_relation(contacts_schema().with_name(None))
        tables.create_relation(contacts_schema().with_name(None), name="people")

    def test_drop(self, rig):
        _, env, tables = rig
        tables.create_relation(contacts_schema())
        tables.drop_relation("contacts")
        assert "contacts" not in env

    def test_relation_rejects_static(self, rig):
        _, env, tables = rig
        env.add_relation(XRelation(contacts_schema()))
        with pytest.raises(EnvironmentError_, match="not managed"):
            tables.relation("contacts")


class TestDataManagement:
    def test_insert_uses_clock_now(self, rig):
        clock, env, tables = rig
        tables.create_relation(contacts_schema())
        clock.run(3)
        tables.insert(
            "contacts", [{"name": "A", "address": "a@b", "messenger": "email"}]
        )
        relation = tables.relation("contacts")
        assert len(relation.instantaneous(2)) == 0
        assert len(relation.instantaneous(3)) == 1

    def test_delete(self, rig):
        clock, env, tables = rig
        tables.create_relation(contacts_schema())
        row = {"name": "A", "address": "a@b", "messenger": "email"}
        tables.insert("contacts", [row])
        clock.tick()
        assert tables.delete("contacts", [row]) == 1
        assert len(tables.relation("contacts").instantaneous(1)) == 0

    def test_explicit_instant(self, rig):
        clock, env, tables = rig
        tables.create_relation(temperatures_schema(), infinite=True)
        tables.insert(
            "temperatures",
            [{"sensor": "s1", "location": "office", "temperature": 20.0, "at": 4}],
            instant=4,
        )
        assert tables.relation("temperatures").inserted_at(4)

    def test_insert_tuples(self, rig):
        _, env, tables = rig
        tables.create_relation(contacts_schema())
        assert tables.insert_tuples("contacts", [("A", "a@b", "email")]) == 1
        assert tables.delete_tuples("contacts", [("A", "a@b", "email")]) == 1
