"""Tests for the discovery bus, Local ERMs and the core ERM (Figure 1)."""

import pytest

from repro.continuous.time import VirtualClock
from repro.devices.prototypes import GET_TEMPERATURE
from repro.devices.sensors import TemperatureSensor
from repro.errors import UnknownServiceError
from repro.model.services import ServiceRegistry
from repro.pems.discovery import Announcement, AnnouncementKind, DiscoveryBus
from repro.pems.erm import EnvironmentResourceManager
from repro.pems.local_erm import LocalEnvironmentResourceManager


@pytest.fixture
def rig():
    clock = VirtualClock()
    bus = DiscoveryBus()
    erm = EnvironmentResourceManager(bus, clock, ServiceRegistry())
    local = LocalEnvironmentResourceManager("floor-1", bus, clock, lease=4)
    return clock, bus, erm, local


def sensor_service(reference="sensor01", location="corridor"):
    return TemperatureSensor(reference, location).as_service()


class TestBus:
    def test_publish_reaches_subscribers(self):
        bus = DiscoveryBus()
        seen = []
        bus.subscribe(seen.append)
        ann = Announcement(AnnouncementKind.ALIVE, sensor_service(), "erm", 4, 0)
        bus.publish(ann)
        assert seen == [ann]
        assert bus.log == [ann]

    def test_unsubscribe(self):
        bus = DiscoveryBus()
        seen = []
        listener = seen.append
        bus.subscribe(listener)
        bus.unsubscribe(listener)
        bus.publish(Announcement(AnnouncementKind.ALIVE, sensor_service(), "e", 4, 0))
        assert seen == []


class TestRegistration:
    def test_register_announces_and_erm_discovers(self, rig):
        clock, bus, erm, local = rig
        local.register(sensor_service())
        assert "sensor01" in erm.registry
        assert erm.events[0].kind == "appeared"

    def test_deregister_sends_bye(self, rig):
        clock, bus, erm, local = rig
        local.register(sensor_service())
        local.deregister("sensor01")
        assert "sensor01" not in erm.registry
        assert erm.events[-1].kind == "left"

    def test_deregister_unknown_raises(self, rig):
        _, _, _, local = rig
        with pytest.raises(UnknownServiceError):
            local.deregister("ghost")

    def test_services_listing_sorted(self, rig):
        _, _, _, local = rig
        local.register(sensor_service("b"))
        local.register(sensor_service("a"))
        assert [s.reference for s in local.services] == ["a", "b"]


class TestLeases:
    def test_renewal_keeps_service_alive(self, rig):
        clock, bus, erm, local = rig
        local.register(sensor_service())
        clock.run(20)  # far past the original lease: renewals keep it up
        assert "sensor01" in erm.registry

    def test_crash_expires_after_lease(self, rig):
        clock, bus, erm, local = rig
        local.register(sensor_service())
        local.crash()
        clock.run(2)
        assert "sensor01" in erm.registry  # lease not over yet
        clock.run(10)
        assert "sensor01" not in erm.registry
        assert any(e.kind == "expired" for e in erm.events)

    def test_recovery_reannounces(self, rig):
        clock, bus, erm, local = rig
        local.register(sensor_service())
        local.crash()
        clock.run(12)
        assert "sensor01" not in erm.registry
        local.recover()
        clock.run(2)
        assert "sensor01" in erm.registry

    def test_available_by_prototype(self, rig):
        clock, bus, erm, local = rig
        local.register(sensor_service("s2"))
        local.register(sensor_service("s1"))
        providers = erm.available(GET_TEMPERATURE)
        assert [s.reference for s in providers] == ["s1", "s2"]


class TestDiscoveryListeners:
    def test_listener_sees_all_events(self, rig):
        clock, bus, erm, local = rig
        events = []
        erm.on_discovery(events.append)
        local.register(sensor_service())
        local.deregister("sensor01")
        assert [e.kind for e in events] == ["appeared", "left"]

    def test_reannouncement_is_not_a_new_appearance(self, rig):
        clock, bus, erm, local = rig
        events = []
        erm.on_discovery(events.append)
        local.register(sensor_service())
        clock.run(10)  # several renewals
        assert [e.kind for e in events] == ["appeared"]


class TestInvocationViaERM:
    def test_sync_invoke(self, rig):
        clock, bus, erm, local = rig
        local.register(sensor_service())
        result = erm.invoke(GET_TEMPERATURE, "sensor01", {})
        assert len(result) == 1

    def test_async_invoke_runs_next_tick(self, rig):
        clock, bus, erm, local = rig
        local.register(sensor_service())
        outcomes = []
        erm.invoke_async(
            GET_TEMPERATURE, "sensor01", {}, lambda r, e: outcomes.append((r, e))
        )
        assert outcomes == []  # not yet
        clock.tick()
        assert len(outcomes) == 1
        result, error = outcomes[0]
        assert error is None and len(result) == 1

    def test_async_invoke_delivers_errors(self, rig):
        clock, bus, erm, local = rig
        outcomes = []
        erm.invoke_async(
            GET_TEMPERATURE, "ghost", {}, lambda r, e: outcomes.append((r, e))
        )
        clock.tick()
        result, error = outcomes[0]
        assert result is None
        assert isinstance(error, UnknownServiceError)


class TestLogCap:
    def test_log_is_bounded(self):
        bus = DiscoveryBus(log_size=8)
        service = sensor_service()
        for i in range(20):
            bus.publish(
                Announcement(AnnouncementKind.ALIVE, service, "e", 4, i)
            )
        log = bus.log
        assert len(log) == 8
        # Oldest dropped first: the retained window is the most recent one.
        assert [a.instant for a in log] == list(range(12, 20))
        assert bus.published_count == 20
        assert bus.dropped_count == 12

    def test_default_cap_mirrors_failure_log_size(self):
        from repro.pems.discovery import ANNOUNCEMENT_LOG_SIZE
        from repro.pems.query_processor import FAILURE_LOG_SIZE

        assert ANNOUNCEMENT_LOG_SIZE == FAILURE_LOG_SIZE
        bus = DiscoveryBus()
        service = sensor_service()
        for i in range(ANNOUNCEMENT_LOG_SIZE + 10):
            bus.publish(
                Announcement(AnnouncementKind.ALIVE, service, "e", 4, i)
            )
        assert len(bus.log) == ANNOUNCEMENT_LOG_SIZE
        assert bus.dropped_count == 10

    def test_long_run_does_not_accumulate(self, rig):
        """Regression: a long-running PEMS with short leases used to
        retain every renewal ever published."""
        clock, bus, erm, local = rig
        local.register(sensor_service())
        clock.run(1000)  # ~500 renewals at cadence 2
        assert len(bus.log) <= 256
        assert bus.dropped_count > 0


class TestRenewalAnchoring:
    def test_mid_cadence_registration_with_short_lease_survives(self):
        """Regression: with lease=2 (cadence 1) anchored on the global
        grid this passed, but with lease=4 (cadence 2) a service
        registered on an odd instant waited until the next even instant —
        under lease=2 the equivalent off-grid registration could expire
        before its first renewal.  Anchoring is per registration instant."""
        clock = VirtualClock()
        bus = DiscoveryBus()
        erm = EnvironmentResourceManager(bus, clock, ServiceRegistry())
        local = LocalEnvironmentResourceManager("floor-1", bus, clock, lease=2)
        clock.tick()  # now = 1: mid-cadence for any grid anchored at 0
        local.register(sensor_service())
        for _ in range(10):
            clock.tick()
            assert "sensor01" in erm.registry  # never expires while renewed

    def test_renewals_follow_registration_anchor(self):
        clock = VirtualClock()
        bus = DiscoveryBus()
        EnvironmentResourceManager(bus, clock, ServiceRegistry())
        local = LocalEnvironmentResourceManager("floor-1", bus, clock, lease=6)
        clock.run(3)  # register at instant 3; cadence is 3
        local.register(sensor_service())
        clock.run(7)
        renewals = [
            a.instant
            for a in bus.log
            if a.kind is AnnouncementKind.ALIVE
            and a.service.reference == "sensor01"
        ]
        assert renewals == [3, 6, 9]  # anchored at 3, not at the 0-grid

    def test_recover_reannounces_next_tick(self):
        """The recover() docstring promises next-tick re-announcement;
        the global grid used to delay it to the next cadence boundary."""
        clock = VirtualClock()
        bus = DiscoveryBus()
        erm = EnvironmentResourceManager(bus, clock, ServiceRegistry())
        local = LocalEnvironmentResourceManager("floor-1", bus, clock, lease=6)
        local.register(sensor_service())
        local.crash()
        clock.run(8)  # lease expired, reaped
        assert "sensor01" not in erm.registry
        local.recover()
        clock.tick()  # next tick, whatever the cadence grid says
        assert "sensor01" in erm.registry
