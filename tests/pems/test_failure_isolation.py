"""Tests for tick-loop failure isolation in the query processor."""

import pytest

from repro.algebra import scan
from repro.devices.prototypes import STANDARD_PROTOTYPES
from repro.devices.scenario import sensors_schema
from repro.devices.sensors import TemperatureSensor
from repro.errors import UnknownServiceError
from repro.pems.pems import PEMS


@pytest.fixture
def pems():
    system = PEMS()
    for prototype in STANDARD_PROTOTYPES:
        system.environment.declare_prototype(prototype)
    system.tables.create_relation(sensors_schema())
    system.tables.insert(
        "sensors", [{"sensor": "ghost", "location": "nowhere"}]
    )
    return system


class TestFailureIsolation:
    def test_failing_query_is_logged_not_fatal(self, pems):
        """The 'ghost' sensor is in the table but not registered: strict
        invocation fails every tick, and the failure is captured."""
        bad = pems.queries.register_continuous(
            scan(pems.environment, "sensors")
            .invoke("getTemperature", on_error="raise")
            .query(),
            name="bad",
        )
        pems.run(3)
        failures = pems.queries.failures
        assert len(failures) == 3
        assert all(f.query_name == "bad" for f in failures)
        assert all(f.error_type is UnknownServiceError for f in failures)
        assert all("ghost" in f.error_message for f in failures)
        assert all("UnknownServiceError" in f.error_repr for f in failures)
        assert pems.clock.now == 3  # the clock kept running

    def test_retained_failure_does_not_pin_executor_state(self, pems):
        """A QueryFailure must not keep the failed query's executors alive:
        storing the live exception would pin them through its traceback
        frames for up to FAILURE_LOG_SIZE entries."""
        import gc
        import weakref

        bad = pems.queries.register_continuous(
            scan(pems.environment, "sensors")
            .invoke("getTemperature", on_error="raise")
            .query(),
            name="bad",
        )
        pems.run(1)
        (failure,) = pems.queries.failures
        executor_refs = [weakref.ref(e) for e in bad.executors()]
        assert executor_refs
        pems.queries.deregister_continuous("bad")
        del bad
        gc.collect()
        # The failure record is still retained, yet no executor survives —
        # i.e. the record holds no live exception/traceback referring back
        # into the engine.
        assert pems.queries.failures == [failure]
        assert all(ref() is None for ref in executor_refs)
        referrers = gc.get_referrers(failure)
        assert all(not isinstance(r, BaseException) for r in referrers)

    def test_other_queries_keep_evaluating(self, pems):
        pems.queries.register_continuous(
            scan(pems.environment, "sensors")
            .invoke("getTemperature", on_error="raise")
            .query(),
            name="bad",
        )
        good = pems.queries.register_continuous(
            scan(pems.environment, "sensors").query(), name="watch"
        )
        pems.run(2)
        assert good.last_result is not None
        assert good.last_result.instant == 2

    def test_failed_query_recovers_when_cause_disappears(self, pems):
        bad = pems.queries.register_continuous(
            scan(pems.environment, "sensors")
            .invoke("getTemperature", on_error="raise")
            .query(),
            name="flaky",
        )
        pems.run(1)
        assert len(pems.queries.failures) == 1
        # The missing service appears: the query starts succeeding.
        pems.environment.register_service(
            TemperatureSensor("ghost", "nowhere").as_service()
        )
        pems.run(1)
        assert len(pems.queries.failures) == 1  # no new failures
        assert bad.last_result is not None
        assert len(bad.last_result.relation) == 1

    def test_no_failures_in_healthy_system(self, pems):
        pems.environment.register_service(
            TemperatureSensor("ghost", "nowhere").as_service()
        )
        pems.queries.register_continuous(
            scan(pems.environment, "sensors").invoke("getTemperature").query(),
            name="fine",
        )
        pems.run(5)
        assert pems.queries.failures == []
