"""Property-based round-trip tests for the language layer."""

from hypothesis import given, settings, strategies as st

from repro.algebra import scan
from repro.bench.workloads import random_environment
from repro.lang import parse_formula, parse_query, to_sal

from tests.property.strategies import formulas

ENV = random_environment(0)


class TestFormulaRoundTrip:
    @given(formulas(max_depth=5))
    @settings(max_examples=120, deadline=None)
    def test_render_parse_identity(self, formula):
        assert parse_formula(formula.render()) == formula

    @given(formulas(), st.data())
    @settings(max_examples=80, deadline=None)
    def test_reparsed_formula_evaluates_identically(self, formula, data):
        row = {
            "category": data.draw(st.sampled_from(["alpha", "beta", "gamma"])),
            "size": data.draw(st.integers(min_value=0, max_value=50)),
            "item": data.draw(st.sampled_from(["svc00", "svc01"])),
        }
        reparsed = parse_formula(formula.render())
        assert reparsed.evaluate(row) == formula.evaluate(row)


@st.composite
def plans(draw):
    """Random parseable plans over the random environment."""
    env = ENV.environment
    builder = scan(env, "items")
    invoked = False
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        op = draw(st.sampled_from(["select", "project", "rename", "invoke", "join", "agg"]))
        if op == "select":
            formula = draw(formulas())
            if formula.attributes() <= builder.schema.real_names:
                builder = builder.select(formula)
        elif op == "project":
            # keep everything real plus score if present: stays parseable
            keep = [n for n in builder.schema.names if n in ("item", "category", "size", "score")]
            if keep:
                builder = builder.project(*keep)
        elif op == "rename":
            if "size" in builder.schema:
                builder = builder.rename("size", "bulk")
        elif op == "invoke" and not invoked:
            try:
                builder = builder.invoke("getScore")
                invoked = True
            except Exception:
                pass
        elif op == "join":
            if "priority" not in builder.schema.name_set:
                builder = builder.join(scan(env, "categories"))
        elif op == "agg":
            if "category" in builder.schema and builder.schema.is_real("category"):
                builder = builder.aggregate(["category"], ("count", None, "n"))
    return builder.query()


class TestPlanRoundTrip:
    @given(plans())
    @settings(max_examples=80, deadline=None)
    def test_render_parse_identity(self, query):
        text = to_sal(query)
        assert parse_query(text, ENV.environment).root == query.root

    @given(plans())
    @settings(max_examples=40, deadline=None)
    def test_reparsed_plan_evaluates_identically(self, query):
        reparsed = parse_query(to_sal(query), ENV.environment)
        original = query.evaluate(ENV.environment, 1)
        again = reparsed.evaluate(ENV.environment, 1)
        assert original.relation == again.relation
        assert original.actions == again.actions
