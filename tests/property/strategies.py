"""Shared hypothesis strategies for property-based tests.

Strategies generate values against the ``items`` relation of
:class:`repro.bench.workloads.RandomEnvironment`:

* real attributes ``item`` (SERVICE), ``category`` (STRING),
  ``size`` (INTEGER);
* virtual attributes ``score`` (REAL, passive getScore) and ``done``
  (BOOLEAN, active doWork).
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.algebra.formula import And, Comparison, Not, Or, col

CATEGORIES = ("alpha", "beta", "gamma")

#: Comparisons over the real attributes of ``items``.
comparisons = st.one_of(
    st.sampled_from(CATEGORIES).map(lambda c: col("category").eq(c)),
    st.sampled_from(CATEGORIES).map(lambda c: col("category").ne(c)),
    st.integers(min_value=0, max_value=50).map(lambda n: col("size").lt(n)),
    st.integers(min_value=0, max_value=50).map(lambda n: col("size").ge(n)),
    st.sampled_from(["svc00", "svc01", "svc02", "svc03"]).map(
        lambda s: col("item").eq(s)
    ),
)


def formulas(max_depth: int = 3):
    """Random selection formulas over the items relation's real schema."""
    return st.recursive(
        comparisons,
        lambda children: st.one_of(
            st.tuples(children, children).map(lambda p: And(*p)),
            st.tuples(children, children).map(lambda p: Or(*p)),
            children.map(Not),
        ),
        max_leaves=max_depth,
    )


#: Rows matching the real schema of ``items``.
item_rows = st.fixed_dictionaries(
    {
        "item": st.sampled_from(["svc00", "svc01", "svc02", "svc03"]),
        "category": st.sampled_from(CATEGORIES),
        "size": st.integers(min_value=0, max_value=50),
    }
)
