"""Property-based tests on schema invariants (Definitions 2–4)."""

from hypothesis import given, strategies as st

from repro.devices.scenario import cameras_schema, contacts_schema, sensors_schema
from repro.model.attributes import Attribute
from repro.model.types import DataType
from repro.model.xschema import ExtendedRelationSchema

SCHEMAS = [contacts_schema, cameras_schema, sensors_schema]

names = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)
dtypes = st.sampled_from(list(DataType))


@st.composite
def schemas(draw):
    """Random extended relation schemas (no binding patterns)."""
    count = draw(st.integers(min_value=1, max_value=8))
    attr_names = draw(
        st.lists(names, min_size=count, max_size=count, unique=True)
    )
    attributes = [Attribute(n, draw(dtypes)) for n in attr_names]
    virtual = draw(st.sets(st.sampled_from(attr_names)))
    return ExtendedRelationSchema("r", attributes, virtual)


class TestPartitionInvariant:
    @given(schemas())
    def test_real_and_virtual_partition_the_schema(self, schema):
        assert schema.real_names | schema.virtual_names == schema.name_set
        assert schema.real_names & schema.virtual_names == frozenset()

    @given(schemas())
    def test_real_positions_are_contiguous(self, schema):
        """delta_R maps real attributes to 0..k-1 in schema order."""
        positions = [schema.real_position(a.name) for a in schema.real_attributes]
        assert positions == list(range(len(schema.real_attributes)))

    @given(schemas(), st.data())
    def test_projection_arithmetic(self, schema, data):
        """t[X] picks exactly the chosen coordinates (Definition 4)."""
        if not schema.real_attributes:
            return
        row = tuple(
            _value_for(a.dtype, i) for i, a in enumerate(schema.real_attributes)
        )
        chosen = data.draw(
            st.lists(
                st.sampled_from([a.name for a in schema.real_attributes]),
                unique=True,
            )
        )
        projected = schema.project_tuple(row, chosen)
        for name, value in zip(chosen, projected):
            assert value == row[schema.real_position(name)]


def _value_for(dtype: DataType, i: int):
    return {
        DataType.STRING: f"s{i}",
        DataType.INTEGER: i,
        DataType.REAL: float(i),
        DataType.BOOLEAN: i % 2 == 0,
        DataType.BLOB: bytes([i % 256]),
        DataType.SERVICE: f"svc{i}",
        DataType.TIMESTAMP: i,
    }[dtype]


class TestDerivationInvariants:
    @given(st.sampled_from(SCHEMAS), st.data())
    def test_project_preserves_partition(self, make, data):
        schema = make()
        keep = data.draw(
            st.lists(st.sampled_from(schema.names), min_size=1, unique=True)
        )
        derived = schema.project(keep)
        assert derived.name_set == frozenset(keep)
        assert derived.real_names == schema.real_names & set(keep)
        assert derived.virtual_names == schema.virtual_names & set(keep)

    @given(st.sampled_from(SCHEMAS), st.data())
    def test_project_binding_patterns_remain_valid(self, make, data):
        schema = make()
        keep = data.draw(
            st.lists(st.sampled_from(schema.names), min_size=1, unique=True)
        )
        derived = schema.project(keep)
        for bp in derived.binding_patterns:
            assert bp.service_attribute in derived.real_names
            assert bp.input_names <= derived.name_set
            assert bp.output_names <= derived.virtual_names

    @given(st.sampled_from(SCHEMAS), st.data())
    def test_rename_is_invertible(self, make, data):
        schema = make()
        old = data.draw(st.sampled_from(schema.names))
        renamed = schema.rename(old, "zz_fresh")
        back = renamed.rename("zz_fresh", old)
        assert back.names == schema.names
        assert back.virtual_names == schema.virtual_names

    @given(st.sampled_from(SCHEMAS), st.data())
    def test_realize_monotone(self, make, data):
        schema = make()
        if not schema.virtual_names:
            return
        chosen = data.draw(
            st.lists(st.sampled_from(sorted(schema.virtual_names)), min_size=1, unique=True)
        )
        derived = schema.realize(chosen)
        assert derived.real_names == schema.real_names | set(chosen)
        for bp in derived.binding_patterns:
            assert bp.output_names <= derived.virtual_names

    @given(st.sampled_from(SCHEMAS), st.sampled_from(SCHEMAS))
    def test_join_realness_is_or(self, make_left, make_right):
        left, right = make_left(), make_right()
        joined = left.join(right)
        for name in joined.name_set:
            in_left_real = name in left.real_names
            in_right_real = name in right.real_names
            assert (name in joined.real_names) == (in_left_real or in_right_real)
