"""Property-based laws of delta coalescing, both backends.

The subscription server's bounded delivery queues fold overflowing
entries with ``coalesce`` — chains of three and more merges, in whatever
grouping the overflow happens to hit.  Correctness of that folding rests
on three laws over *consecutive* contract-clean deltas:

* **associativity** — any grouping of a coalesce chain yields the same
  delta, so the queue may merge neighbours in any order;
* **contract-cleanliness** — the merged delta is again a valid two-delta
  (“disjoint sides, applicable to the pre-state”), so it can itself be
  merged further or applied directly;
* **replay equivalence** — applying the merged delta to the chain's
  pre-state lands exactly on the chain's final state, which is why
  overflow coalescing is lossless for final state.

Consecutive deltas are generated from a state trajectory: drawing the
*states* (not the deltas) makes every generated chain consecutive and
contract-clean by construction, with interleaved insert/delete churn —
the same tuples routinely enter, leave and re-enter across the chain.
"""

from hypothesis import given, settings, strategies as st

from repro.exec.columnar import ColumnarDelta
from repro.exec.delta import Delta

WIDTH = 2

values = st.one_of(
    st.none(),
    st.integers(min_value=-8, max_value=8),
    st.sampled_from(["a", "b", "c"]),
)

#: A small tuple universe so successive states overlap heavily: churn,
#: cancellation (insert-then-delete) and re-insertion all get exercised.
states = st.frozensets(st.tuples(values, values), max_size=6)

#: A trajectory S0 → S1 → … → Sn with n ≥ 3 transitions, i.e. chains of
#: three or more coalesces once folded.
trajectories = st.tuples(
    states, st.lists(states, min_size=3, max_size=6)
)


def deltas_of(initial, targets, make):
    """The consecutive delta chain walking ``initial`` through ``targets``."""
    chain = []
    state = initial
    for target in targets:
        chain.append(make(target - state, state - target))
        state = target
    return chain


def make_row(inserted, deleted):
    return Delta(frozenset(inserted), frozenset(deleted))


def make_columnar(inserted, deleted):
    return ColumnarDelta.from_sets(
        frozenset(inserted), frozenset(deleted), WIDTH
    )


def fold_left(chain):
    merged = chain[0]
    for later in chain[1:]:
        merged = merged.coalesce(later)
    return merged


def fold_right(chain):
    merged = chain[-1]
    for earlier in reversed(chain[:-1]):
        merged = earlier.coalesce(merged)
    return merged


def random_groupings(chain):
    """A few distinct association orders beyond the two linear folds:
    merge a middle pair first, then fold the rest."""
    for pivot in range(1, len(chain) - 1):
        grouped = (
            chain[:pivot]
            + [chain[pivot].coalesce(chain[pivot + 1])]
            + chain[pivot + 2 :]
        )
        yield fold_left(grouped)


BACKENDS = [make_row, make_columnar]


class TestCoalesceLaws:
    @given(trajectories)
    @settings(max_examples=200)
    def test_associative_row(self, trajectory):
        initial, targets = trajectory
        chain = deltas_of(initial, targets, make_row)
        reference = fold_left(chain)
        assert fold_right(chain) == reference
        for merged in random_groupings(chain):
            assert merged == reference

    @given(trajectories)
    @settings(max_examples=200)
    def test_associative_columnar(self, trajectory):
        initial, targets = trajectory
        chain = deltas_of(initial, targets, make_columnar)
        reference = fold_left(chain)
        assert fold_right(chain) == reference
        for merged in random_groupings(chain):
            assert merged == reference

    @given(trajectories)
    @settings(max_examples=200)
    def test_contract_clean(self, trajectory):
        initial, targets = trajectory
        for make in BACKENDS:
            merged = fold_left(deltas_of(initial, targets, make))
            inserted, deleted = merged.inserted, merged.deleted
            assert not inserted & deleted
            assert not inserted & initial  # inserts are new to the pre-state
            assert deleted <= initial  # deletes existed in the pre-state

    @given(trajectories)
    @settings(max_examples=200)
    def test_replay_equivalence(self, trajectory):
        initial, targets = trajectory
        final = targets[-1]
        for make in BACKENDS:
            merged = fold_left(deltas_of(initial, targets, make))
            assert (initial - merged.deleted) | merged.inserted == final
            # The merge is exactly the net start→end difference: nothing
            # transient survives (insert-then-delete and delete-then-
            # re-insert pairs cancel).
            assert merged.inserted == final - initial
            assert merged.deleted == initial - final

    @given(trajectories)
    @settings(max_examples=100)
    def test_mixed_backends_interoperate(self, trajectory):
        """coalesce accepts the *other* backend on its right-hand side and
        the laws still hold (the server queue never forces a conversion)."""
        initial, targets = trajectory
        mixed = [
            (make_row if i % 2 == 0 else make_columnar)(
                delta.inserted, delta.deleted
            )
            for i, delta in enumerate(
                deltas_of(initial, targets, make_row)
            )
        ]
        reference = fold_left(deltas_of(initial, targets, make_row))
        assert fold_left(mixed) == reference
        assert fold_right(mixed) == reference

    def test_identity_fast_paths(self):
        """Empty sides short-circuit without changing semantics, and the
        row path canonicalizes to the EMPTY_DELTA singleton."""
        from repro.exec.delta import EMPTY_DELTA

        busy = Delta(frozenset({("a", 1)}), frozenset({("b", 2)}))
        assert busy.coalesce(EMPTY_DELTA) is busy
        assert EMPTY_DELTA.coalesce(busy) == busy
        assert EMPTY_DELTA.coalesce(EMPTY_DELTA) is EMPTY_DELTA
        undo = Delta(busy.deleted, busy.inserted)
        assert busy.coalesce(undo) is EMPTY_DELTA

        cbusy = ColumnarDelta.from_sets(busy.inserted, busy.deleted, WIDTH)
        cempty = ColumnarDelta.from_sets(frozenset(), frozenset(), WIDTH)
        assert cbusy.coalesce(cempty) is cbusy
        assert cempty.coalesce(cbusy) == cbusy
        assert not cbusy.coalesce(undo)
