"""Property-based tests on operator laws over X-Relations."""

from hypothesis import given, settings, strategies as st

from repro.algebra import BaseRelation, Query, col, relation as plan_of
from repro.bench.workloads import random_environment
from repro.model.relation import XRelation

from tests.property.strategies import formulas, item_rows


def items_relation(env_handle, rows):
    """A literal X-Relation over the items schema with the given rows."""
    return XRelation.from_mappings(env_handle.items_schema, rows)


def run(plan, env):
    return Query(plan.node if hasattr(plan, "node") else plan).evaluate(
        env.environment
    ).relation


ENV = random_environment(0)


class TestSelectionLaws:
    @given(formulas(), formulas(), st.lists(item_rows, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_selections_commute(self, f, g, rows):
        rel = items_relation(ENV, rows)
        fg = plan_of(rel).select(f).select(g)
        gf = plan_of(rel).select(g).select(f)
        assert run(fg, ENV) == run(gf, ENV)

    @given(formulas(), st.lists(item_rows, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_selection_is_subset(self, f, rows):
        rel = items_relation(ENV, rows)
        selected = run(plan_of(rel).select(f), ENV)
        assert selected.tuples <= rel.tuples

    @given(formulas(), st.lists(item_rows, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_selection_idempotent(self, f, rows):
        rel = items_relation(ENV, rows)
        once = run(plan_of(rel).select(f), ENV)
        twice = run(plan_of(rel).select(f).select(f), ENV)
        assert once == twice

    @given(formulas(), st.lists(item_rows, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_selection_complement_partitions(self, f, rows):
        rel = items_relation(ENV, rows)
        yes = run(plan_of(rel).select(f), ENV)
        no = run(plan_of(rel).select(~f), ENV)
        assert yes.tuples | no.tuples == rel.tuples
        assert yes.tuples & no.tuples == frozenset()


class TestSetOperatorLaws:
    @given(st.lists(item_rows, max_size=8), st.lists(item_rows, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_union_commutative(self, rows_a, rows_b):
        a, b = items_relation(ENV, rows_a), items_relation(ENV, rows_b)
        ab = plan_of(a).union(plan_of(b))
        ba = plan_of(b).union(plan_of(a))
        assert run(ab, ENV) == run(ba, ENV)

    @given(st.lists(item_rows, max_size=8), st.lists(item_rows, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_intersection_via_difference(self, rows_a, rows_b):
        """A ∩ B = A − (A − B)."""
        a, b = items_relation(ENV, rows_a), items_relation(ENV, rows_b)
        inter = run(plan_of(a).intersect(plan_of(b)), ENV)
        via_diff = run(
            plan_of(a).difference(plan_of(a).difference(plan_of(b))), ENV
        )
        assert inter == via_diff

    @given(st.lists(item_rows, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_union_idempotent(self, rows):
        a = items_relation(ENV, rows)
        assert run(plan_of(a).union(plan_of(a)), ENV) == a


class TestProjectionLaws:
    @given(st.lists(item_rows, max_size=10), st.data())
    @settings(max_examples=60, deadline=None)
    def test_projection_cascade(self, rows, data):
        rel = items_relation(ENV, rows)
        outer = data.draw(
            st.lists(st.sampled_from(["item", "category"]), min_size=1, unique=True)
        )
        cascaded = plan_of(rel).project("item", "category", "size").project(*outer)
        direct = plan_of(rel).project(*outer)
        assert run(cascaded, ENV) == run(direct, ENV)

    @given(st.lists(item_rows, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_projection_cardinality_bounded(self, rows):
        rel = items_relation(ENV, rows)
        projected = run(plan_of(rel).project("category"), ENV)
        assert len(projected) <= len(rel)


class TestJoinLaws:
    @given(st.lists(item_rows, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_join_with_categories_matches_filtering(self, rows):
        """items ⋈ categories keeps exactly the items whose category
        appears in categories (all of them, by construction)."""
        rel = items_relation(ENV, rows)
        joined = run(plan_of(rel).join(plan_of_categories()), ENV)
        assert len(joined) == len(rel)

    @given(st.lists(item_rows, max_size=6), st.lists(item_rows, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_join_commutes_on_tuple_content(self, rows_a, rows_b):
        a, b = items_relation(ENV, rows_a), items_relation(ENV, rows_b)
        ab = run(plan_of(a).join(plan_of(b)), ENV)
        ba = run(plan_of(b).join(plan_of(a)), ENV)
        assert {frozenset(m.items()) for m in ab.to_mappings()} == {
            frozenset(m.items()) for m in ba.to_mappings()
        }


def plan_of_categories():
    return plan_of(ENV.environment.relation("categories"))
