"""Property-based tests on continuous-query invariants."""

from hypothesis import given, settings, strategies as st

from repro.algebra import EvaluationContext, Query, col, scan
from repro.continuous.continuous_query import ContinuousQuery
from repro.continuous.xdrelation import XDRelation
from repro.devices.scenario import temperatures_schema
from repro.model.environment import PervasiveEnvironment

# Scripted stream content: per instant, a list of (sensor index, temp).
readings = st.lists(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),
            st.sampled_from([10.0, 20.0, 30.0, 40.0]),
        ),
        max_size=3,
    ),
    min_size=1,
    max_size=10,
)


def build_stream(script):
    env = PervasiveEnvironment()
    stream = XDRelation(temperatures_schema(), infinite=True)
    env.add_relation(stream)
    for instant, events in enumerate(script, start=1):
        rows = [
            (f"s{index}", "office", temperature, instant)
            for index, temperature in set(events)
        ]
        stream.insert(rows, instant=instant)
    return env, stream


class TestWindowInvariants:
    @given(readings, st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_window_equals_union_of_journal(self, script, period):
        env, stream = build_stream(script)
        query = scan(env, "temperatures").window(period).query()
        for instant in range(1, len(script) + 1):
            result = query.evaluate(env, instant).relation
            expected = set()
            for j in range(max(1, instant - period + 1), instant + 1):
                expected |= stream.inserted_at(j)
            assert result.tuples == frozenset(expected)

    @given(readings)
    @settings(max_examples=60, deadline=None)
    def test_windows_nest(self, script):
        env, _ = build_stream(script)
        instant = len(script)
        small = scan(env, "temperatures").window(1).query().evaluate(env, instant)
        large = scan(env, "temperatures").window(3).query().evaluate(env, instant)
        assert small.relation.tuples <= large.relation.tuples


class TestContinuousVsOneShot:
    @given(readings)
    @settings(max_examples=40, deadline=None)
    def test_selection_over_window_matches_one_shot(self, script):
        """For passive plans, continuous evaluation at τ equals one-shot
        evaluation at τ (windows read exact journals)."""
        env, _ = build_stream(script)
        query = (
            scan(env, "temperatures")
            .window(2)
            .select(col("temperature").ge(30.0))
            .query()
        )
        continuous = ContinuousQuery(query, env)
        for instant in range(1, len(script) + 1):
            live = continuous.evaluate_at(instant)
            fresh = query.evaluate(env, instant)
            assert live.relation == fresh.relation

    @given(readings)
    @settings(max_examples=40, deadline=None)
    def test_insertion_stream_partitions_window_content(self, script):
        """Under continuous evaluation, S[insertion] over W[1] emits each
        stream tuple exactly once across all instants."""
        env, stream = build_stream(script)
        query = (
            scan(env, "temperatures").window(1).stream("insertion").query()
        )
        continuous = ContinuousQuery(query, env)
        emitted: list[tuple] = []
        for instant in range(1, len(script) + 1):
            continuous.evaluate_at(instant)
        emitted = [t for _, t in continuous.emitted]
        assert len(emitted) == len(set(emitted))
        all_inserted = set()
        for instant in range(1, len(script) + 1):
            all_inserted |= stream.inserted_at(instant)
        assert set(emitted) == all_inserted
