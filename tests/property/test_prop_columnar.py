"""Property-based round-trips for the columnar delta representation.

The core invariant of the columnar backend: transposing rows to
per-attribute arrays and back is the identity — order- and
duplicate-preserving on the array views, set-equal on the delta-contract
views — for arbitrary values (``None``, mixed types) and for the output
schema of every operator in the Table 4 plans.
"""

from hypothesis import given, settings, strategies as st

from repro.exec.columnar import ColumnarDelta
from repro.exec.delta import Delta

from tests.exec.test_differential import Rig, q1, q2, q3, q4

# Anything a device row might hold, including None and mixed types.
values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False),
    st.text(max_size=8),
)


def rows_of(width: int, max_size: int = 12):
    """Row-tuple lists of fixed arity; duplicates are likely and wanted."""
    return st.lists(
        st.tuples(*[values] * width), max_size=max_size
    ).flatmap(
        lambda rows: st.just(rows)
        if len(rows) < 2
        else st.just(rows + rows[:2])  # force duplicate tuples
    )


#: The real-attribute widths of every operator output schema in the four
#: Table 4 plans (Table 3 operators all appear as subtrees).
def table4_widths() -> list:
    rig = Rig()
    widths = set()
    for make in (q1, q2, q3, q4):
        for node in make(rig.env).root.walk():
            widths.add(len(node.schema.real_attributes))
    return sorted(widths)


WIDTHS = table4_widths()


class TestRowColumnRoundTrip:
    @given(st.data())
    @settings(max_examples=80, deadline=None)
    def test_rows_to_columns_to_rows_is_identity(self, data):
        width = data.draw(st.sampled_from(WIDTHS), label="width")
        inserted = data.draw(rows_of(width), label="inserted")
        deleted = data.draw(rows_of(width), label="deleted")
        delta = ColumnarDelta.from_rows(inserted, deleted, width)
        columns = delta.insert_columns()
        assert len(columns) == width
        rebuilt = ColumnarDelta.from_columns(
            columns,
            delta.delete_columns(),
            width,
            insert_count=len(inserted),
            delete_count=len(deleted),
        )
        # Array views: exact identity, order and duplicates preserved.
        assert list(rebuilt.insert_rows()) == list(inserted)
        assert list(rebuilt.delete_rows()) == list(deleted)
        # Contract views: set semantics.
        assert rebuilt.inserted == frozenset(inserted)
        assert rebuilt.deleted == frozenset(deleted)
        assert rebuilt == delta

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_from_sets_round_trip(self, data):
        width = data.draw(st.sampled_from(WIDTHS), label="width")
        inserted = frozenset(data.draw(rows_of(width), label="inserted"))
        delta = ColumnarDelta.from_sets(inserted, frozenset(), width)
        assert delta.inserted is inserted
        assert frozenset(delta.insert_rows()) == inserted
        assert len(delta.insert_columns()) == width
        assert frozenset(
            ColumnarDelta.from_columns(
                delta.insert_columns(), [[] for _ in range(width)], width,
                insert_count=len(inserted),
            ).insert_rows()
        ) == inserted

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_through_the_row_contract(self, data):
        width = data.draw(st.sampled_from(WIDTHS), label="width")
        rows = data.draw(rows_of(width), label="rows")
        columnar = ColumnarDelta.from_rows(rows, [], width)
        row_delta = columnar.to_delta()
        back = ColumnarDelta.coerce(row_delta, width)
        assert back == columnar == row_delta


class TestCoalesceProperty:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_coalesce_equals_sequential_application(self, data):
        width = data.draw(st.sampled_from(WIDTHS), label="width")
        state = frozenset(data.draw(rows_of(width), label="state"))
        first_ins = frozenset(data.draw(rows_of(width), label="first_ins"))
        later_ins = frozenset(data.draw(rows_of(width), label="later_ins"))

        def deletions_from(current, label):
            if not current:
                return frozenset()
            return frozenset(
                data.draw(
                    st.sets(st.sampled_from(sorted(current, key=repr))),
                    label=label,
                )
            )

        # Contract-respecting deltas against the evolving state: inserts
        # are absent from it, deletes are members of it.
        first = Delta(first_ins - state, deletions_from(state, "first_del"))
        mid = (state | first.inserted) - first.deleted
        later = Delta(later_ins - mid, deletions_from(mid, "later_del"))
        sequential = (mid | later.inserted) - later.deleted
        for a, b in [
            (first, later),
            (ColumnarDelta.coerce(first, width), later),
            (first, ColumnarDelta.coerce(later, width)),
            (
                ColumnarDelta.coerce(first, width),
                ColumnarDelta.coerce(later, width),
            ),
        ]:
            merged = a.coalesce(b)
            assert (state | merged.inserted) - merged.deleted == sequential
            # The merged delta is disjoint (a well-formed two-delta).
            assert not merged.inserted & merged.deleted
