"""Property-based tests on XD-Relation journaling invariants."""

from hypothesis import given, settings, strategies as st

from repro.continuous.xdrelation import XDRelation
from repro.devices.scenario import surveillance_schema

rows = st.tuples(
    st.sampled_from(["A", "B", "C", "D"]),
    st.sampled_from(["office", "roof"]),
    st.sampled_from([25.0, 28.0]),
)

# A random write script: per instant, rows to insert and rows to delete.
scripts = st.lists(
    st.tuples(st.lists(rows, max_size=3), st.lists(rows, max_size=3)),
    max_size=12,
)


def replay(script):
    xd = XDRelation(surveillance_schema())
    for instant, (to_insert, to_delete) in enumerate(script):
        xd.insert(to_insert, instant)
        xd.delete(to_delete, instant)
    return xd


class TestJournalInvariants:
    @given(scripts)
    @settings(max_examples=80, deadline=None)
    def test_instantaneous_matches_naive_replay(self, script):
        xd = replay(script)
        state: set = set()
        for instant, (to_insert, to_delete) in enumerate(script):
            state |= set(to_insert)
            state -= set(to_delete)
            assert xd.instantaneous(instant).tuples == frozenset(state)

    @given(scripts)
    @settings(max_examples=80, deadline=None)
    def test_deltas_reconstruct_states(self, script):
        """state(τ) = state(τ−1) ∪ inserted_at(τ) − deleted_at(τ)."""
        xd = replay(script)
        previous: frozenset = frozenset()
        for instant in range(len(script)):
            current = xd.instantaneous(instant).tuples
            rebuilt = (previous | xd.inserted_at(instant)) - xd.deleted_at(instant)
            assert current == rebuilt
            previous = current

    @given(scripts)
    @settings(max_examples=80, deadline=None)
    def test_deltas_are_disjoint(self, script):
        xd = replay(script)
        for instant in range(len(script)):
            assert not xd.inserted_at(instant) & xd.deleted_at(instant)

    @given(scripts, st.integers(min_value=1, max_value=5))
    @settings(max_examples=80, deadline=None)
    def test_window_is_union_of_insertions(self, script, period):
        xd = replay(script)
        for instant in range(len(script)):
            expected: set = set()
            for j in range(max(0, instant - period + 1), instant + 1):
                expected |= xd.inserted_at(j)
            assert xd.window(instant, period) == frozenset(expected)

    @given(scripts, st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_window_monotone_in_period(self, script, period):
        xd = replay(script)
        for instant in range(len(script)):
            assert xd.window(instant, period) <= xd.window(instant, period + 1)
