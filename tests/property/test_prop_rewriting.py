"""Property-based tests: every rewrite rule preserves Definition 9
equivalence on randomized plans and environments."""

from hypothesis import given, settings, strategies as st

from repro.algebra import Query, check_equivalence, col, scan
from repro.algebra.optimizer import _apply_everywhere
from repro.algebra.rewriting import DEFAULT_RULES, PUSHDOWN_RULES, rewrite_fixpoint
from repro.bench.workloads import random_environment
from repro.errors import SerenaError

from tests.property.strategies import formulas


@st.composite
def random_plans(draw, env_handle):
    """A random plan over the items/categories relations.

    Plans interleave selections, projections-that-keep-everything-needed,
    assignment, passive invocation and a join — the operators the rewrite
    rules move around.
    """
    env = env_handle.environment
    builder = scan(env, "items")
    did_invoke = False
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        choice = draw(st.sampled_from(["select", "invoke", "join", "assign"]))
        if choice == "select":
            formula = draw(formulas())
            usable = formula.attributes() <= builder.schema.real_names
            if usable:
                builder = builder.select(formula)
        elif choice == "invoke" and not did_invoke:
            builder = builder.invoke("getScore")
            did_invoke = True
        elif choice == "join":
            if "priority" not in builder.schema.name_set:
                builder = builder.join(scan(env, "categories"))
        elif choice == "assign":
            if "done" in builder.schema and builder.schema.is_virtual("done"):
                builder = builder.assign("done", True)
    return builder.query()


class TestRuleSoundness:
    @given(st.integers(min_value=0, max_value=5), st.data())
    @settings(max_examples=40, deadline=None)
    def test_every_applicable_rule_preserves_equivalence(self, seed, data):
        env_handle = random_environment(seed)
        query = data.draw(random_plans(env_handle))
        instant = data.draw(st.integers(min_value=0, max_value=3))
        for rule in DEFAULT_RULES:
            for rewritten_root in _apply_everywhere(query.root, rule.transform):
                rewritten = Query(rewritten_root)
                report = check_equivalence(
                    query, rewritten, env_handle.environment, instant
                )
                assert report.equivalent, (
                    f"rule {rule.name} broke equivalence on {query.render()}"
                )

    @given(st.integers(min_value=0, max_value=5), st.data())
    @settings(max_examples=40, deadline=None)
    def test_pushdown_fixpoint_preserves_equivalence(self, seed, data):
        env_handle = random_environment(seed)
        query = data.draw(random_plans(env_handle))
        rewritten = rewrite_fixpoint(query, PUSHDOWN_RULES)
        report = check_equivalence(query, rewritten, env_handle.environment)
        assert report.equivalent

    @given(st.integers(min_value=0, max_value=5), st.data())
    @settings(max_examples=30, deadline=None)
    def test_pushdown_never_increases_invocations(self, seed, data):
        """The heuristic's whole point: fewer or equal service calls."""
        env_handle = random_environment(seed)
        env = env_handle.environment
        query = data.draw(random_plans(env_handle))
        rewritten = rewrite_fixpoint(query, PUSHDOWN_RULES)

        registry = env.registry
        registry.reset_invocation_count()
        query.evaluate(env)
        naive = registry.invocation_count
        registry.reset_invocation_count()
        rewritten.evaluate(env)
        optimized = registry.invocation_count
        assert optimized <= naive
