"""Property-based round trip: schema → DDL text → schema."""

from hypothesis import given, settings, strategies as st

from repro.continuous.time import VirtualClock
from repro.devices.prototypes import STANDARD_PROTOTYPES
from repro.model.attributes import Attribute
from repro.model.environment import PervasiveEnvironment
from repro.model.types import DataType
from repro.model.xschema import ExtendedRelationSchema
from repro.pems.table_manager import ExtendedTableManager

names = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True)
dtypes = st.sampled_from(
    [
        DataType.STRING,
        DataType.INTEGER,
        DataType.REAL,
        DataType.BOOLEAN,
        DataType.BLOB,
        DataType.SERVICE,
    ]
)


@st.composite
def plain_schemas(draw):
    """Random extended relation schemas without binding patterns."""
    count = draw(st.integers(min_value=1, max_value=6))
    attr_names = draw(st.lists(names, min_size=count, max_size=count, unique=True))
    attributes = [Attribute(n, draw(dtypes)) for n in attr_names]
    virtual = draw(st.sets(st.sampled_from(attr_names)))
    return ExtendedRelationSchema("roundtrip", attributes, virtual)


class TestDescribeRoundTrip:
    @given(plain_schemas())
    @settings(max_examples=80, deadline=None)
    def test_describe_parses_back_compatible(self, schema):
        text = schema.describe() + ";"
        tables = ExtendedTableManager(PervasiveEnvironment(), VirtualClock())
        tables.execute_ddl(text)
        rebuilt = tables.environment.schema("roundtrip")
        assert rebuilt.compatible(schema)

    def test_paper_schemas_round_trip_with_binding_patterns(self):
        """The Table 2 schemas, with their binding patterns."""
        from repro.devices.scenario import cameras_schema, contacts_schema

        for make in (contacts_schema, cameras_schema):
            schema = make()
            tables = ExtendedTableManager(PervasiveEnvironment(), VirtualClock())
            for prototype in STANDARD_PROTOTYPES:
                tables.environment.declare_prototype(prototype)
            tables.execute_ddl(schema.describe() + ";")
            rebuilt = tables.environment.schema(schema.name)
            assert rebuilt.compatible(schema)
