"""Property-based tests: Serena SQL compiles to the same semantics as the
hand-built algebra for templated queries."""

from hypothesis import given, settings, strategies as st

from repro.algebra import col, scan
from repro.bench.workloads import random_environment
from repro.lang.sql import compile_sql

from tests.property.strategies import CATEGORIES

ENV = random_environment(0)

sizes = st.integers(min_value=0, max_value=50)
categories = st.sampled_from(CATEGORIES)


class TestWhereEquivalence:
    @given(categories, sizes)
    @settings(max_examples=60, deadline=None)
    def test_where_matches_builder_selection(self, category, size):
        env = ENV.environment
        sql = compile_sql(
            f"SELECT item, category, size FROM items "
            f"WHERE category = '{category}' AND size < {size}",
            env,
        )
        built = (
            scan(env, "items")
            .select(col("category").eq(category) & col("size").lt(size))
            .project("item", "category", "size")
            .query()
        )
        assert sql.evaluate(env).relation == built.evaluate(env).relation

    @given(categories)
    @settings(max_examples=30, deadline=None)
    def test_using_matches_builder_invocation(self, category):
        env = ENV.environment
        sql = compile_sql(
            f"SELECT item, score FROM items WHERE category = '{category}' "
            "USING getScore",
            env,
        )
        built = (
            scan(env, "items")
            .select(col("category").eq(category))
            .invoke("getScore")
            .project("item", "score")
            .query()
        )
        a = sql.evaluate(env, 1)
        b = built.evaluate(env, 1)
        assert a.relation == b.relation
        assert a.actions == b.actions

    @given(categories, sizes)
    @settings(max_examples=40, deadline=None)
    def test_group_by_matches_builder_aggregate(self, category, size):
        env = ENV.environment
        sql = compile_sql(
            f"SELECT category, count(*) AS n FROM items "
            f"WHERE size >= {size} GROUP BY category",
            env,
        )
        built = (
            scan(env, "items")
            .select(col("size").ge(size))
            .aggregate(["category"], ("count", None, "n"))
            .query()
        )
        assert sql.evaluate(env).relation == built.evaluate(env).relation

    @given(categories)
    @settings(max_examples=30, deadline=None)
    def test_join_matches_builder(self, category):
        env = ENV.environment
        sql = compile_sql(
            "SELECT item, category, priority FROM items NATURAL JOIN "
            f"categories WHERE category != '{category}'",
            env,
        )
        built = (
            scan(env, "items")
            .join(scan(env, "categories"))
            .select(col("category").ne(category))
            .project("item", "category", "priority")
            .query()
        )
        assert sql.evaluate(env).relation == built.evaluate(env).relation
