"""The sampled city pinned across every engine, 55 ticks, cascade on.

The ISSUE 10 acceptance differential: the SMALL_CITY config (2 zones,
churn, one scripted cascade) runs on naive/incremental/shared/columnar
and the zone-sharded federation in lockstep; every engine must agree on
every query's instantaneous result at every instant, on the accumulated
alert log, and — through the cascade — the ``station-health`` β sweep
must keep reporting every station with **zero missed readings** (the
substitution registry's failover serving the crash instant itself).
"""

import pytest

from repro.city.config import SMALL_CITY
from repro.city.scenario import build_city

TICKS = 55

#: The naive oracle plus every engine it pins down, including the
#: federation with zones mapped onto shards.
ENGINES = ("naive", "incremental", "shared", "columnar", "federated")


def alert_key(log):
    return sorted((a.instant, a.sink, a.zone, a.load) for a in log.alerts)


def drive(engine, backend="row"):
    scenario = build_city(SMALL_CITY, engine=engine, backend=backend)
    snapshots = []
    health_counts = []
    for _ in range(TICKS):
        scenario.run(1)
        snapshots.append(
            {
                name: cq.last_result.relation.tuples
                for name, cq in scenario.queries.items()
            }
        )
        health_counts.append(
            len(scenario.queries["station-health"].last_result.relation.tuples)
        )
    return scenario, snapshots, health_counts


@pytest.fixture(scope="module")
def naive_run():
    return drive("naive")


@pytest.mark.parametrize("engine", ENGINES[1:])
def test_city_differential(engine, naive_run):
    naive, naive_snaps, naive_health = naive_run
    scenario, snaps, health = drive(engine)
    for instant, (expected, got) in enumerate(zip(naive_snaps, snaps), start=1):
        assert got == expected, f"{engine} diverges at instant {instant}"
    assert alert_key(scenario.alerts) == alert_key(naive.alerts), engine
    assert health == naive_health, engine


def test_columnar_backend_matches_row(naive_run):
    _, naive_snaps, _ = naive_run
    _, snaps, _ = drive("shared", backend="columnar")
    assert snaps == naive_snaps


def test_zero_missed_station_readings_through_cascade(naive_run):
    """Every tick — including the crash instant and the quarantine that
    follows — reports a reading for every station."""
    scenario, _, health = naive_run
    stations = len(scenario.topology.stations)
    crash_at = SMALL_CITY.cascade.crash_at
    assert scenario.clock.now >= crash_at, "run must cross the cascade"
    assert health == [stations] * TICKS


def test_cascade_had_observable_consequences(naive_run):
    scenario, snaps, _ = naive_run
    # The crashed station was rebound to a spare in its zone.
    report = scenario.pems.erm.substitution_report()
    crashed = scenario.cascade.crashed_station
    assert any(crashed in key for key in report["bindings"]), report["bindings"]
    # The downstream relays actually flickered: the relay-health sweep
    # lost rows during the intermittent episodes.
    relay_counts = {len(snap["relay-health"]) for snap in snaps}
    assert len(relay_counts) > 1, "relay flicker never showed in relay-health"
    # Demand surges crossed thresholds: alerts were raised and every one
    # carries a zone of this city.
    assert scenario.alerts.alerts
    assert {a.zone for a in scenario.alerts.alerts} <= set(SMALL_CITY.zones)


def test_federation_prunes_per_zone_queries():
    scenario, _, _ = drive("federated")
    scattered = scenario.pems.shard_summary()["scattered"]
    pruned = [row for row in scattered if row["pruned"]]
    assert pruned, "per-zone σ/π queries should prune to single shards"
    for row in pruned:
        assert len(row["zones"]) == 1
