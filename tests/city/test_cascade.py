"""The cascade compiler: lazy scripts, stagger, the memory bound."""

import tracemalloc

import pytest

from repro.city.cascade import CascadeSchedule, CascadeSpec
from repro.city.config import CityConfig
from repro.city.generator import generate_topology
from repro.devices.faults import FaultScript
from repro.errors import SerenaError


def schedule_for(config: CityConfig) -> CascadeSchedule:
    return CascadeSchedule(config.cascade, generate_topology(config))


CONFIG = CityConfig(
    zones=("a", "b"),
    relays_per_zone=3,
    stations_per_zone=2,
    cascade=CascadeSpec(
        zone=1, station=1, crash_at=20, flicker_ticks=5, stagger=2, failure_rate=0.5
    ),
)


class TestIntermittentWindows:
    """The FaultScript extension the compiler builds on."""

    def test_rate_applies_only_inside_windows(self):
        script = FaultScript(failure_rate=1.0, intermittent_windows=((5, 8),))
        kinds = [script.fault_at("r", t, "seed") for t in range(12)]
        assert kinds[5:8] == ["intermittent"] * 3
        assert all(kind is None for kind in kinds[:5] + kinds[8:])

    def test_empty_windows_keep_original_behaviour(self):
        everywhere = FaultScript(failure_rate=0.4)
        windowed = FaultScript(failure_rate=0.4, intermittent_windows=((0, 100),))
        for t in range(100):
            assert everywhere.fault_at("r", t, "s") == windowed.fault_at("r", t, "s")

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            FaultScript(failure_rate=0.1, intermittent_windows=((9, 3),))


class TestCompilation:
    def test_station_crashes_permanently(self):
        schedule = schedule_for(CONFIG)
        assert schedule.crashed_station == "station-b-1"
        script = schedule.script_for("station-b-1")
        assert script == FaultScript(crash_at=20)

    def test_other_stations_untouched(self):
        schedule = schedule_for(CONFIG)
        assert schedule.script_for("station-b-0") is None
        assert schedule.script_for("station-a-1") is None

    def test_zone_relays_flicker_staggered(self):
        schedule = schedule_for(CONFIG)
        spec = CONFIG.cascade
        for rank in range(CONFIG.relays_per_zone):
            script = schedule.script_for(f"relay-b-{rank}")
            start = spec.crash_at + 1 + spec.stagger * rank
            assert script == FaultScript(
                failure_rate=spec.failure_rate,
                intermittent_windows=((start, start + spec.flicker_ticks),),
            )

    def test_out_of_zone_relays_and_meters_untouched(self):
        schedule = schedule_for(CONFIG)
        assert schedule.script_for("relay-a-0") is None
        assert schedule.script_for("meter-b-0") is None

    def test_affected_lists_station_then_relays(self):
        schedule = schedule_for(CONFIG)
        assert list(schedule.affected()) == [
            "station-b-1",
            "relay-b-0",
            "relay-b-1",
            "relay-b-2",
        ]

    def test_spec_validation(self):
        with pytest.raises(SerenaError):
            CascadeSpec(crash_at=-1)
        with pytest.raises(SerenaError):
            CascadeSpec(flicker_ticks=0)
        with pytest.raises(SerenaError):
            CascadeSpec(failure_rate=0.0)
        with pytest.raises(SerenaError):
            schedule_for(
                CityConfig(zones=2, stations_per_zone=1, cascade=CascadeSpec(station=7))
            )


#: 8 zones × 512 relays = 4096 relay devices, plus stations/spares.
BIG = CityConfig(
    name="big",
    zones=8,
    meters_per_zone=0,
    relays_per_zone=512,
    stations_per_zone=1,
    weather_per_zone=0,
    spare_stations_per_zone=0,
    alert_sinks=0,
    cascade=CascadeSpec(zone=3, crash_at=10, flicker_ticks=50, stagger=1),
)


class TestMemoryBound:
    """Regression: the schedule must stay O(affected devices), never
    materializing (device, tick) pairs up front."""

    def test_schedule_memory_stays_flat_over_4096_devices(self):
        topology = generate_topology(BIG)
        assert len(topology.relays) == 4096
        tracemalloc.start()
        try:
            schedule = CascadeSchedule(BIG.cascade, topology)
            # Consulting the whole fleet must not accumulate anything.
            for spec in topology.devices():
                schedule.script_for(spec.reference)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        # An eager device × tick schedule (4096 × 50+ tick windows of
        # per-instant entries) costs tens of MB; the lazy compiler holds
        # one rank per affected relay.  1 MB is an order-of-magnitude
        # safety margin over the observed footprint.
        assert peak < 1_000_000, f"cascade schedule allocated {peak} bytes"

    def test_expand_is_capped(self):
        schedule = CascadeSchedule(BIG.cascade, generate_topology(BIG))
        affected = list(schedule.affected())
        assert len(affected) == 513  # the station + its zone's relays
        with pytest.raises(SerenaError, match="refusing to materialize"):
            schedule.expand(limit=100)
        expanded = schedule.expand(limit=1024)
        assert set(expanded) == set(affected)
