"""Generator determinism across *fresh processes* (ISSUE 10 satellite).

Same ``CityConfig`` + seed must yield byte-identical topology, fault
schedule and 55-tick query output wherever it runs.  Two child
interpreters — deliberately launched with *different*
``PYTHONHASHSEED`` values, so any hidden reliance on ``hash()``
ordering would diverge — each print a topology digest, a fault-schedule
digest and a digest of the full 55-tick query output; the outputs must
match byte for byte.
"""

import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")

CHILD = """
import hashlib, sys

from repro.city.config import SMALL_CITY
from repro.city.scenario import build_city

scenario = build_city(SMALL_CITY, engine="incremental")
print("topology", scenario.topology.digest())

schedule = scenario.cascade
fault_blob = hashlib.sha256()
for reference in schedule.affected():
    fault_blob.update(f"{reference} {schedule.script_for(reference)!r}\\n".encode())
for reference, injector in sorted(scenario.injectors.items()):
    fault_blob.update(f"churn {reference} {injector.script!r}\\n".encode())
print("faults", fault_blob.hexdigest())

output_blob = hashlib.sha256()
for _ in range(55):
    scenario.run(1)
    for name in sorted(scenario.queries):
        tuples = scenario.queries[name].last_result.relation.tuples
        output_blob.update(name.encode())
        for line in sorted(repr(t) for t in tuples):
            output_blob.update(line.encode())
alerts = sorted(
    (a.instant, a.sink, a.zone, a.load) for a in scenario.alerts.alerts
)
output_blob.update(repr(alerts).encode())
print("output", output_blob.hexdigest())
"""


def run_child(hash_seed: str) -> str:
    result = subprocess.run(
        [sys.executable, "-c", CHILD],
        capture_output=True,
        text=True,
        timeout=300,
        env={"PYTHONPATH": SRC, "PYTHONHASHSEED": hash_seed, "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_two_fresh_processes_agree_byte_for_byte():
    first = run_child("1")
    second = run_child("20400")
    assert first == second
    lines = dict(line.split() for line in first.strip().splitlines())
    assert set(lines) == {"topology", "faults", "output"}
    # and the in-process topology digest matches the children's
    from repro.city.config import SMALL_CITY
    from repro.city.generator import generate_topology

    assert generate_topology(SMALL_CITY).digest() == lines["topology"]
