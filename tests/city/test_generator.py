"""Topology generation: shape, determinism, digests."""

from repro.city.config import SMALL_CITY, CityConfig
from repro.city.generator import generate_topology


class TestShape:
    def test_counts_match_config(self):
        topology = generate_topology(SMALL_CITY)
        config = SMALL_CITY
        zones = len(config.zones)
        assert len(topology.meters) == zones * config.meters_per_zone
        assert len(topology.relays) == zones * config.relays_per_zone
        assert len(topology.stations) == zones * config.stations_per_zone
        assert len(topology.spares) == zones * config.spare_stations_per_zone
        assert len(topology.weather) == zones * config.weather_per_zone
        assert len(topology.sinks) == config.alert_sinks
        assert len(topology) == config.device_count

    def test_references_are_unique(self):
        topology = generate_topology(SMALL_CITY)
        references = [spec.reference for spec in topology.devices()]
        assert len(references) == len(set(references))

    def test_meters_feed_a_zone_relay(self):
        topology = generate_topology(SMALL_CITY)
        by_zone = {}
        for relay in topology.relays:
            by_zone.setdefault(relay.zone, set()).add(relay.reference)
        for meter in topology.meters:
            assert meter.attr("relay") in by_zone[meter.zone]

    def test_thresholds_cover_every_zone(self):
        topology = generate_topology(SMALL_CITY)
        assert tuple(z for z, _ in topology.thresholds) == SMALL_CITY.zones

    def test_attribute_distributions_respect_bounds(self):
        config = CityConfig(zones=4, meters_per_zone=20, base_load=50.0, load_spread=5.0)
        topology = generate_topology(config)
        bases = [float(m.attr("base")) for m in topology.meters]
        assert all(45.0 <= b <= 55.0 for b in bases)
        # the draw actually spreads (not all meters identical)
        assert len(set(bases)) > 1


class TestDeterminism:
    def test_same_config_same_digest(self):
        assert (
            generate_topology(SMALL_CITY).digest()
            == generate_topology(SMALL_CITY).digest()
        )

    def test_seed_changes_topology(self):
        base = generate_topology(CityConfig(seed="a"))
        other = generate_topology(CityConfig(seed="b"))
        assert base.digest() != other.digest()
        # references are structural (not seed-derived); attributes differ
        assert [m.reference for m in base.meters] == [
            m.reference for m in other.meters
        ]
        assert [m.attrs for m in base.meters] != [m.attrs for m in other.meters]

    def test_digest_covers_thresholds(self):
        a = generate_topology(CityConfig(overload_threshold=70.0))
        b = generate_topology(CityConfig(overload_threshold=90.0))
        assert a.digest() != b.digest()
