"""CityConfig: dict/file interchange, validation, digests."""

import json

import pytest

from repro.city.cascade import CascadeSpec
from repro.city.config import DEMO_CITY, SMALL_CITY, CityConfig
from repro.errors import SerenaError


class TestConstruction:
    def test_zone_count_expands_to_names(self):
        config = CityConfig(zones=3)
        assert config.zones == ("z0", "z1", "z2")

    def test_explicit_zone_names_kept(self):
        config = CityConfig(zones=("harbor", "hills"))
        assert config.zones == ("harbor", "hills")

    def test_duplicate_zone_names_rejected(self):
        with pytest.raises(SerenaError):
            CityConfig(zones=("a", "a"))

    def test_no_zones_rejected(self):
        with pytest.raises(SerenaError):
            CityConfig(zones=0)

    def test_negative_counts_rejected(self):
        with pytest.raises(SerenaError):
            CityConfig(meters_per_zone=-1)

    def test_churn_rate_bounds(self):
        with pytest.raises(SerenaError):
            CityConfig(churn_rate=1.5)

    def test_cascade_zone_must_exist(self):
        with pytest.raises(SerenaError):
            CityConfig(zones=2, cascade=CascadeSpec(zone=5))

    def test_device_count(self):
        config = CityConfig(
            zones=2,
            meters_per_zone=3,
            relays_per_zone=1,
            stations_per_zone=1,
            weather_per_zone=1,
            spare_stations_per_zone=1,
            alert_sinks=2,
        )
        assert config.device_count == 2 * (3 + 1 + 1 + 1 + 1) + 2


class TestInterchange:
    def test_dict_round_trip(self):
        restored = CityConfig.from_dict(SMALL_CITY.to_dict())
        assert restored == SMALL_CITY

    def test_unknown_keys_rejected(self):
        with pytest.raises(SerenaError, match="unknown city config keys"):
            CityConfig.from_dict({"metersss": 3})

    def test_non_dict_rejected(self):
        with pytest.raises(SerenaError):
            CityConfig.from_dict([1, 2])

    def test_json_file_round_trip(self, tmp_path):
        path = tmp_path / "city.json"
        path.write_text(json.dumps(DEMO_CITY.to_dict()), encoding="utf-8")
        assert CityConfig.load(path) == DEMO_CITY

    def test_toml_file_load(self, tmp_path):
        tomllib = pytest.importorskip("tomllib")
        assert tomllib  # 3.11+ only; JSON is the portable form
        path = tmp_path / "city.toml"
        path.write_text(
            "\n".join(
                [
                    'name = "toml-city"',
                    'seed = "toml-1"',
                    'zones = ["a", "b"]',
                    "meters_per_zone = 2",
                    "[cascade]",
                    "zone = 1",
                    "crash_at = 10",
                ]
            ),
            encoding="utf-8",
        )
        config = CityConfig.load(path)
        assert config.name == "toml-city"
        assert config.zones == ("a", "b")
        assert config.cascade == CascadeSpec(zone=1, crash_at=10)

    def test_unsupported_extension_rejected(self, tmp_path):
        path = tmp_path / "city.yaml"
        path.write_text("name: x", encoding="utf-8")
        with pytest.raises(SerenaError, match="extension"):
            CityConfig.load(path)


class TestDigest:
    def test_digest_is_stable(self):
        assert SMALL_CITY.digest() == CityConfig.from_dict(
            SMALL_CITY.to_dict()
        ).digest()

    def test_digest_tracks_every_field(self):
        base = CityConfig()
        assert base.digest() != CityConfig(seed="other").digest()
        assert base.digest() != CityConfig(meters_per_zone=9).digest()
        assert (
            base.digest()
            != CityConfig(cascade=CascadeSpec(zone=0, crash_at=5)).digest()
        )
