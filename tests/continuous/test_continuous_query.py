"""Tests for continuous queries (Section 4.2), including the invocation
refinement: β invokes only newly inserted tuples."""

import pytest

from repro.algebra import col, scan
from repro.continuous.continuous_query import ContinuousQuery
from repro.continuous.xdrelation import XDRelation
from repro.devices.prototypes import GET_TEMPERATURE, SEND_MESSAGE
from repro.devices.scenario import contacts_schema, sensors_schema, temperatures_schema
from repro.errors import SerenaError
from repro.model.environment import PervasiveEnvironment
from repro.model.relation import XRelation
from repro.model.services import Service


@pytest.fixture
def dynamic_env(paper_env):
    """The paper env with contacts as a *dynamic* relation."""
    rows = paper_env.instantaneous("contacts", 0).to_mappings()
    paper_env.remove_relation("contacts")
    xd = XDRelation(contacts_schema())
    xd.insert_mappings(rows, instant=0)
    paper_env.add_relation(xd)
    return paper_env


class TestBasics:
    def test_evaluates_per_instant(self, paper_env):
        q = scan(paper_env, "sensors").invoke("getTemperature").query()
        cq = ContinuousQuery(q, paper_env)
        r1 = cq.evaluate_at(1)
        r2 = cq.evaluate_at(2)
        assert r1.instant == 1 and r2.instant == 2
        assert cq.last_result is r2

    def test_instants_must_not_go_backwards(self, paper_env):
        cq = ContinuousQuery(scan(paper_env, "contacts").query(), paper_env)
        cq.evaluate_at(5)
        with pytest.raises(SerenaError, match="non-decreasing"):
            cq.evaluate_at(4)

    def test_history_opt_in(self, paper_env):
        cq = ContinuousQuery(scan(paper_env, "contacts").query(), paper_env)
        cq.evaluate_at(0)
        with pytest.raises(SerenaError, match="keep_history"):
            cq.history
        cq2 = ContinuousQuery(
            scan(paper_env, "contacts").query(), paper_env, keep_history=True
        )
        cq2.run(range(3))
        assert len(cq2.history) == 3

    def test_listeners_fire(self, paper_env):
        cq = ContinuousQuery(scan(paper_env, "contacts").query(), paper_env)
        seen = []
        cq.on_result(lambda r: seen.append(r.instant))
        cq.run(range(2))
        assert seen == [0, 1]


class TestInvocationRefinement:
    """Section 4.2: 'a binding pattern is actually invoked only for newly
    inserted tuples, and not for every tuple from the relation at each
    time instant.'"""

    def test_no_reinvocation_for_stable_tuples(self, dynamic_env):
        q = (
            scan(dynamic_env, "contacts")
            .assign("text", "Hi")
            .invoke("sendMessage")
            .query()
        )
        cq = ContinuousQuery(q, dynamic_env)
        registry = dynamic_env.registry
        registry.reset_invocation_count()
        cq.evaluate_at(1)
        assert registry.invocation_count == 3
        cq.evaluate_at(2)
        cq.evaluate_at(3)
        assert registry.invocation_count == 3  # cached, not re-sent

    def test_new_tuple_triggers_invocation(self, dynamic_env):
        q = (
            scan(dynamic_env, "contacts")
            .assign("text", "Hi")
            .invoke("sendMessage")
            .query()
        )
        cq = ContinuousQuery(q, dynamic_env)
        cq.evaluate_at(1)
        registry = dynamic_env.registry
        registry.reset_invocation_count()
        dynamic_env.relation("contacts").insert_mappings(
            [{"name": "Zoe", "address": "zoe@x.org", "messenger": "jabber"}],
            instant=2,
        )
        cq.evaluate_at(2)
        assert registry.invocation_count == 1  # only Zoe

    def test_deleted_tuple_disappears_from_result(self, dynamic_env):
        q = (
            scan(dynamic_env, "contacts")
            .assign("text", "Hi")
            .invoke("sendMessage")
            .query()
        )
        cq = ContinuousQuery(q, dynamic_env)
        assert len(cq.evaluate_at(1).relation) == 3
        dynamic_env.relation("contacts").delete_mappings(
            [{"name": "Carla", "address": "carla@elysee.fr", "messenger": "email"}],
            instant=2,
        )
        assert len(cq.evaluate_at(2).relation) == 2

    def test_reinserted_tuple_counts_as_new(self, dynamic_env):
        q = (
            scan(dynamic_env, "contacts")
            .assign("text", "Hi")
            .invoke("sendMessage")
            .query()
        )
        cq = ContinuousQuery(q, dynamic_env)
        cq.evaluate_at(1)
        row = {"name": "Carla", "address": "carla@elysee.fr", "messenger": "email"}
        contacts = dynamic_env.relation("contacts")
        contacts.delete_mappings([row], instant=2)
        cq.evaluate_at(2)
        contacts.insert_mappings([row], instant=3)
        registry = dynamic_env.registry
        registry.reset_invocation_count()
        cq.evaluate_at(3)
        assert registry.invocation_count == 1  # Carla re-messaged

    def test_one_shot_still_invokes_everything(self, dynamic_env):
        """One-shot evaluation uses a fresh context: pure Table 3f."""
        q = (
            scan(dynamic_env, "contacts")
            .assign("text", "Hi")
            .invoke("sendMessage")
            .query()
        )
        registry = dynamic_env.registry
        registry.reset_invocation_count()
        q.evaluate(dynamic_env, 1)
        q.evaluate(dynamic_env, 1)
        assert registry.invocation_count == 6  # 3 per evaluation


class TestActionsAccumulation:
    def test_cumulative_actions(self, dynamic_env):
        q = (
            scan(dynamic_env, "contacts")
            .assign("text", "Hi")
            .invoke("sendMessage")
            .query()
        )
        cq = ContinuousQuery(q, dynamic_env)
        cq.evaluate_at(1)
        dynamic_env.relation("contacts").insert_mappings(
            [{"name": "Zoe", "address": "zoe@x.org", "messenger": "jabber"}],
            instant=2,
        )
        cq.evaluate_at(2)
        assert len(cq.actions) == 4
        assert len(cq.action_log) == 4


class TestSameInstantIdempotency:
    """Regression: re-evaluating the current instant must return the
    cached result and must not repeat any bookkeeping — no duplicate
    actions, emissions, history entries or listener notifications."""

    @pytest.mark.parametrize("engine", ["naive", "incremental"])
    def test_repeat_evaluation_is_idempotent(self, dynamic_env, engine):
        q = (
            scan(dynamic_env, "contacts")
            .assign("text", "Hi")
            .invoke("sendMessage")
            .query()
        )
        cq = ContinuousQuery(q, dynamic_env, keep_history=True, engine=engine)
        notified = []
        cq.on_result(lambda r: notified.append(r.instant))
        first = cq.evaluate_at(1)
        again = cq.evaluate_at(1)
        assert again is first
        assert len(cq.action_log) == 3
        assert len(cq.history) == 1
        assert notified == [1]
        # Moving on still works, and repeats there are idempotent too.
        cq.evaluate_at(2)
        cq.evaluate_at(2)
        assert len(cq.history) == 2
        assert notified == [1, 2]
        assert len(cq.action_log) == 3  # nothing new to invoke

    def test_repeat_evaluation_of_stream_query_emits_once(self):
        env = PervasiveEnvironment()
        stream = XDRelation(temperatures_schema(), infinite=True)
        env.add_relation(stream)
        q = (
            scan(env, "temperatures").window(1).stream("insertion").query("s")
        )
        cq = ContinuousQuery(q, env)
        stream.insert([("s1", "office", 30.0, 1)], instant=1)
        cq.evaluate_at(1)
        cq.evaluate_at(1)
        assert len(cq.emitted) == 1


class TestStreamQueries:
    def test_emitted_accumulates(self):
        env = PervasiveEnvironment()
        stream = XDRelation(temperatures_schema(), infinite=True)
        env.add_relation(stream)
        q = (
            scan(env, "temperatures")
            .window(1)
            .select(col("temperature").gt(25.0))
            .stream("insertion")
            .query("hot")
        )
        cq = ContinuousQuery(q, env)
        for instant in range(1, 5):
            stream.insert(
                [("s1", "office", 20.0 + instant * 2, instant)], instant=instant
            )
            cq.evaluate_at(instant)
        # temperatures: 22, 24, 26, 28 → two exceed 25
        assert len(cq.emitted) == 2
        instants = [i for i, _ in cq.emitted]
        assert instants == [3, 4]
