"""Tests for XD-Relations (Section 4.1): journaling, instantaneous views,
windows and deltas."""

import pytest

from repro.continuous.xdrelation import XDRelation
from repro.devices.scenario import surveillance_schema, temperatures_schema
from repro.errors import SerenaError


def finite():
    return XDRelation(surveillance_schema())


def stream():
    return XDRelation(temperatures_schema(), infinite=True)


class TestJournal:
    def test_insert_and_instantaneous(self):
        xd = finite()
        xd.insert([("A", "office", 28.0)], instant=1)
        assert len(xd.instantaneous(0)) == 0
        assert len(xd.instantaneous(1)) == 1
        assert len(xd.instantaneous(5)) == 1

    def test_insert_returns_new_count(self):
        xd = finite()
        assert xd.insert([("A", "office", 28.0)], instant=1) == 1
        assert xd.insert([("A", "office", 28.0)], instant=1) == 0  # duplicate

    def test_delete(self):
        xd = finite()
        t = ("A", "office", 28.0)
        xd.insert([t], instant=1)
        assert xd.delete([t], instant=3) == 1
        assert len(xd.instantaneous(2)) == 1
        assert len(xd.instantaneous(3)) == 0

    def test_delete_absent_is_zero(self):
        xd = finite()
        assert xd.delete([("A", "office", 28.0)], instant=1) == 0

    def test_writes_must_be_time_ordered(self):
        xd = finite()
        xd.insert([("A", "office", 28.0)], instant=5)
        with pytest.raises(SerenaError, match="non-decreasing"):
            xd.insert([("B", "roof", 25.0)], instant=4)

    def test_same_instant_insert_delete_cancels(self):
        xd = finite()
        t = ("A", "office", 28.0)
        xd.insert([t], instant=1)
        xd.delete([t], instant=1)
        assert len(xd.instantaneous(1)) == 0
        assert xd.inserted_at(1) == frozenset()
        assert xd.deleted_at(1) == frozenset()

    def test_initial_tuples_at_instant_zero(self):
        xd = XDRelation(surveillance_schema(), initial=[("A", "office", 28.0)])
        assert len(xd.instantaneous(0)) == 1
        assert xd.inserted_at(0) == {("A", "office", 28.0)}

    def test_tuples_validated(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            finite().insert([("only-one-value",)], instant=0)


class TestStreams:
    def test_append_only(self):
        xd = stream()
        xd.insert([("s1", "office", 20.0, 1)], instant=1)
        with pytest.raises(SerenaError, match="append-only"):
            xd.delete([("s1", "office", 20.0, 1)], instant=2)

    def test_instantaneous_is_prefix(self):
        xd = stream()
        for i in range(1, 4):
            xd.insert([("s1", "office", 20.0 + i, i)], instant=i)
        assert len(xd.instantaneous(2)) == 2
        assert len(xd.instantaneous(3)) == 3

    def test_infinite_flag(self):
        assert stream().infinite
        assert not finite().infinite


class TestDeltasAndWindows:
    def test_inserted_at(self):
        xd = stream()
        xd.insert([("s1", "office", 20.0, 1)], instant=1)
        xd.insert([("s1", "office", 21.0, 2)], instant=2)
        assert xd.inserted_at(1) == {("s1", "office", 20.0, 1)}
        assert xd.inserted_at(2) == {("s1", "office", 21.0, 2)}
        assert xd.inserted_at(3) == frozenset()

    def test_deleted_at(self):
        xd = finite()
        t = ("A", "office", 28.0)
        xd.insert([t], instant=1)
        xd.delete([t], instant=2)
        assert xd.deleted_at(2) == {t}

    def test_window_boundaries(self):
        """window(τ, p) covers (τ−p, τ] exactly."""
        xd = stream()
        for i in range(1, 6):
            xd.insert([("s1", "office", float(i), i)], instant=i)
        window = xd.window(5, 2)  # instants 4 and 5
        assert {t[3] for t in window} == {4, 5}

    def test_window_excludes_future(self):
        xd = stream()
        xd.insert([("s1", "office", 1.0, 1)], instant=1)
        xd.insert([("s1", "office", 5.0, 5)], instant=5)
        assert {t[3] for t in xd.window(2, 10)} == {1}

    def test_window_empty(self):
        assert stream().window(10, 3) == frozenset()

    def test_len_tracks_state(self):
        xd = finite()
        xd.insert([("A", "office", 28.0), ("B", "roof", 25.0)], instant=1)
        assert len(xd) == 2
        xd.delete([("A", "office", 28.0)], instant=2)
        assert len(xd) == 1

    def test_insert_mappings(self):
        xd = finite()
        xd.insert_mappings(
            [{"name": "A", "location": "office", "threshold": 28.0}], instant=0
        )
        assert ("A", "office", 28.0) in xd.instantaneous(0)
