"""Tests for the virtual clock (discrete time domain)."""

import pytest

from repro.continuous.time import VirtualClock
from repro.errors import SerenaError


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0

    def test_custom_start(self):
        assert VirtualClock(5).now == 5

    def test_negative_start_rejected(self):
        with pytest.raises(SerenaError):
            VirtualClock(-1)

    def test_tick_advances(self):
        clock = VirtualClock()
        assert clock.tick() == 1
        assert clock.now == 1

    def test_run(self):
        clock = VirtualClock()
        assert clock.run(10) == 10

    def test_run_negative_rejected(self):
        with pytest.raises(SerenaError):
            VirtualClock().run(-1)

    def test_listeners_fire_in_order(self):
        clock = VirtualClock()
        calls = []
        clock.on_tick(lambda t: calls.append(("a", t)))
        clock.on_tick(lambda t: calls.append(("b", t)))
        clock.tick()
        assert calls == [("a", 1), ("b", 1)]

    def test_remove_listener(self):
        clock = VirtualClock()
        calls = []
        listener = calls.append
        clock.on_tick(listener)
        clock.tick()
        clock.remove_listener(listener)
        clock.tick()
        assert calls == [1]

    def test_iter_ticks(self):
        clock = VirtualClock()
        assert list(clock.iter_ticks(3)) == [1, 2, 3]
