"""Edge-case tests for the continuous machinery."""

import pytest

from repro.algebra import col, scan
from repro.continuous.continuous_query import ContinuousQuery
from repro.continuous.xdrelation import XDRelation
from repro.devices.scenario import contacts_schema, temperatures_schema
from repro.model.environment import PervasiveEnvironment


class TestRepeatedInstants:
    def test_same_instant_twice_is_allowed_and_stable(self, paper_env):
        cq = ContinuousQuery(
            scan(paper_env, "sensors").invoke("getTemperature").query(),
            paper_env,
        )
        r1 = cq.evaluate_at(3)
        r2 = cq.evaluate_at(3)
        assert r1.relation == r2.relation

    def test_same_instant_reevaluation_uses_memo(self, paper_env):
        registry = paper_env.registry
        cq = ContinuousQuery(
            scan(paper_env, "sensors").invoke("getTemperature").query(),
            paper_env,
        )
        cq.evaluate_at(3)
        registry.reset_invocation_count()
        cq.evaluate_at(3)
        assert registry.invocation_count == 0


class TestEmptyWindows:
    def test_window_on_silent_stream(self):
        env = PervasiveEnvironment()
        env.add_relation(XDRelation(temperatures_schema(), infinite=True))
        q = scan(env, "temperatures").window(5).query()
        assert len(q.evaluate(env, 100).relation) == 0

    def test_window_past_all_activity(self):
        env = PervasiveEnvironment()
        stream = XDRelation(temperatures_schema(), infinite=True)
        env.add_relation(stream)
        stream.insert([("s", "office", 20.0, 1)], instant=1)
        q = scan(env, "temperatures").window(2).query()
        assert len(q.evaluate(env, 1).relation) == 1
        assert len(q.evaluate(env, 50).relation) == 0


class TestDynamicSchemaJournal:
    def test_instant_zero_initialization(self):
        xd = XDRelation(contacts_schema(), initial=[("A", "a@x", "email")])
        assert len(xd.instantaneous(0)) == 1
        assert xd.last_instant == 0

    def test_interleaved_insert_delete_same_tuple_across_instants(self):
        xd = XDRelation(contacts_schema())
        t = ("A", "a@x", "email")
        xd.insert([t], 1)
        xd.delete([t], 2)
        xd.insert([t], 3)
        assert len(xd.instantaneous(1)) == 1
        assert len(xd.instantaneous(2)) == 0
        assert len(xd.instantaneous(3)) == 1
        assert xd.inserted_at(3) == {t}


class TestContinuousOverChangingServices:
    def test_service_replacement_changes_readings(self, paper_env):
        """Replacing a service (same reference) takes effect next tick —
        the registry holds one service per reference."""
        from repro.devices.prototypes import GET_TEMPERATURE
        from repro.model.services import Service

        q = (
            scan(paper_env, "sensors")
            .invoke("getTemperature")
            .select(col("sensor").eq("sensor01"))
            .query()
        )
        cq = ContinuousQuery(q, paper_env)
        first = cq.evaluate_at(1).relation.column("temperature")
        paper_env.registry.register(
            Service(
                "sensor01",
                {GET_TEMPERATURE: lambda i, t: [{"temperature": 99.0}]},
            )
        )
        # The β cache still holds sensor01's old reading (its input tuple
        # did not change) — the Section 4.2 semantics: no new insertion,
        # no new invocation.
        second = cq.evaluate_at(2).relation.column("temperature")
        assert second == first
        # A one-shot evaluation (fresh context) sees the new service.
        fresh = q.evaluate(paper_env, 2).relation.column("temperature")
        assert fresh == [99.0]
