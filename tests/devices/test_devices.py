"""Tests for the simulated devices: determinism and behaviour."""

import pytest

from repro.devices.cameras import Camera
from repro.devices.determinism import (
    stable_choice,
    stable_gauss_like,
    stable_int,
    stable_unit,
)
from repro.devices.messengers import Outbox, email_service, jabber_service, sms_service
from repro.devices.prototypes import CHECK_PHOTO, GET_TEMPERATURE, SEND_MESSAGE, TAKE_PHOTO
from repro.devices.rss import RssFeed
from repro.devices.sensors import TemperatureSensor


class TestDeterminism:
    def test_stable_unit_reproducible(self):
        assert stable_unit("a", 1) == stable_unit("a", 1)
        assert 0.0 <= stable_unit("a", 1) < 1.0

    def test_stable_unit_varies(self):
        values = {stable_unit("a", i) for i in range(50)}
        assert len(values) == 50

    def test_stable_int_bounds(self):
        for i in range(100):
            assert 0 <= stable_int(7, "x", i) < 7

    def test_stable_int_bad_bound(self):
        with pytest.raises(ValueError):
            stable_int(0, "x")

    def test_stable_gauss_like_range(self):
        for i in range(100):
            assert -1.0 <= stable_gauss_like("s", i) <= 1.0

    def test_stable_choice(self):
        options = ["a", "b", "c"]
        assert stable_choice(options, "k", 3) in options
        assert stable_choice(options, "k", 3) == stable_choice(options, "k", 3)


class TestTemperatureSensor:
    def test_deterministic_reading(self):
        s1 = TemperatureSensor("sensor01", "corridor", base=20.0)
        s2 = TemperatureSensor("sensor01", "corridor", base=20.0)
        assert s1.temperature(5) == s2.temperature(5)

    def test_reading_near_base(self):
        sensor = TemperatureSensor("sensor01", "corridor", base=20.0)
        for instant in range(0, 100, 7):
            assert abs(sensor.temperature(instant) - 20.0) < 3.0

    def test_heating_episode_raises_reading(self):
        sensor = TemperatureSensor("s", "office", base=20.0)
        sensor.heat(10, 20, peak=15.0)
        mid = sensor.temperature(15)  # plateau of the triangular ramp
        outside = sensor.temperature(30)
        assert mid > 30.0
        assert outside < 25.0

    def test_cooling_episode(self):
        """Negative peak models a cold draft (used by the Q4-style query)."""
        sensor = TemperatureSensor("s", "roof", base=15.0)
        sensor.heat(10, 20, peak=-12.0)
        assert sensor.temperature(15) < 6.0

    def test_bad_episode(self):
        with pytest.raises(ValueError):
            TemperatureSensor("s", "x").heat(10, 5, 1.0)

    def test_as_service(self):
        service = TemperatureSensor("sensor01", "corridor").as_service()
        assert service.reference == "sensor01"
        assert service.properties["location"] == "corridor"
        (row,) = service.handler(GET_TEMPERATURE)({}, 3)
        assert isinstance(row["temperature"], float)


class TestCamera:
    def test_check_photo_own_area(self):
        camera = Camera("camera01", "office", quality=8)
        (row,) = camera.check_photo("office", 0)
        assert 7 <= row["quality"] <= 9
        assert row["delay"] > 0

    def test_check_photo_foreign_area_empty(self):
        camera = Camera("camera01", "office")
        assert camera.check_photo("roof", 0) == []

    def test_take_photo_records_shot(self):
        camera = Camera("camera01", "office")
        (row,) = camera.take_photo("office", 5, instant=7)
        assert row["photo"] == b"photo|camera01|office|q5|t7"
        assert camera.shots == [(7, "office", 5)]

    def test_take_photo_foreign_area_empty(self):
        camera = Camera("camera01", "office")
        assert camera.take_photo("roof", 5, 0) == []
        assert camera.shots == []

    def test_quality_clamped(self):
        camera = Camera("c", "office", quality=10)
        for instant in range(20):
            (row,) = camera.check_photo("office", instant)
            assert 0 <= row["quality"] <= 10

    def test_as_service_implements_both(self):
        service = Camera("camera01", "office").as_service()
        assert service.prototype_names == {"checkPhoto", "takePhoto"}


class TestMessengers:
    def test_send_records_message(self):
        outbox = Outbox()
        email = email_service(outbox)
        assert email.send("a@b.c", "Hi", instant=3)
        (message,) = outbox.messages
        assert message.channel == "email"
        assert message.instant == 3
        assert message.delivered

    def test_failure_rate_one_bounces_everything(self):
        outbox = Outbox()
        broken = email_service(outbox, failure_rate=1.0)
        assert not broken.send("a@b.c", "Hi", 0)
        assert not outbox.messages[0].delivered

    def test_failure_rate_validated(self):
        with pytest.raises(ValueError):
            email_service(failure_rate=2.0)

    def test_outbox_queries(self):
        outbox = Outbox()
        email = email_service(outbox)
        jabber = jabber_service(outbox)
        email.send("a@b.c", "one", 0)
        jabber.send("x@y.z", "two", 1)
        assert len(outbox.sent_to("a@b.c")) == 1
        assert len(outbox.by_channel("jabber")) == 1
        assert len(outbox) == 2

    def test_channel_latencies_differ(self):
        assert sms_service().latency > email_service().latency > jabber_service().latency

    def test_as_service(self):
        outbox = Outbox()
        service = email_service(outbox).as_service()
        (row,) = service.handler(SEND_MESSAGE)({"address": "a@b", "text": "t"}, 0)
        assert row["sent"] is True
        assert len(outbox) == 1


class TestRssFeed:
    def test_deterministic(self):
        a = RssFeed("lemonde", rate=0.5, seed=1)
        b = RssFeed("lemonde", rate=0.5, seed=1)
        for instant in range(30):
            assert a.items_at(instant) == b.items_at(instant)

    def test_rate_controls_volume(self):
        low = sum(len(RssFeed("x", 0.1, 0).items_at(i)) for i in range(400))
        high = sum(len(RssFeed("x", 0.9, 0).items_at(i)) for i in range(400))
        assert high > low * 3

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            RssFeed("x", rate=0.0)

    def test_items_between_window(self):
        feed = RssFeed("x", rate=1.0, seed=0)
        items = feed.items_between(5, 8)
        assert len(items) == 3  # instants 6, 7, 8
        assert [i["published"] for i in items] == [6, 7, 8]

    def test_some_items_mention_keyword(self):
        feed = RssFeed("lemonde", rate=1.0, seed=0)
        titles = [feed.items_at(i)[0]["title"] for i in range(200)]
        assert any("Obama" in t for t in titles)
        assert not all("Obama" in t for t in titles)


class TestRssStreamWrapper:
    def _collect(self, poll_period, instants=12):
        from repro.devices.rss import RssFeed, RssStreamWrapper

        feed = RssFeed("site", rate=1.0, seed=0)
        rows: list[dict] = []
        wrapper = RssStreamWrapper([feed], rows.extend, poll_period=poll_period)
        for instant in range(1, instants + 1):
            wrapper(instant)
        return rows

    def test_poll_every_instant(self):
        rows = self._collect(poll_period=1)
        assert [r["published"] for r in rows] == list(range(1, 13))

    def test_sparse_polling_catches_up(self):
        """Polling every 3 instants still delivers every item published
        since the previous poll (no loss, no duplicates)."""
        rows = self._collect(poll_period=3)
        assert [r["published"] for r in rows] == list(range(1, 13))

    def test_rows_carry_site(self):
        rows = self._collect(poll_period=2, instants=4)
        assert {r["site"] for r in rows} == {"site"}

    def test_wrapper_as_service_matches_feed(self):
        from repro.devices.prototypes import FETCH_ITEMS
        from repro.devices.rss import RssFeed

        feed = RssFeed("site", rate=1.0, seed=3)
        service = feed.as_service()
        assert service.reference == "rss-site"
        rows = service.handler(FETCH_ITEMS)({}, 7)
        assert rows == feed.items_at(7)
