"""Tests for the deterministic chaos harness."""

import pytest

from repro.devices.faults import FaultInjector, FaultScript, InjectedFault
from repro.devices.prototypes import GET_TEMPERATURE
from repro.devices.sensors import TemperatureSensor
from repro.errors import InvocationError
from repro.model.services import ServiceRegistry


def make_injector(script: FaultScript, seed="chaos") -> FaultInjector:
    sensor = TemperatureSensor("s1", "office")
    return FaultInjector(sensor.as_service(), script, seed=seed)


class TestFaultScript:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultScript(crash_windows=((5, 3),))
        with pytest.raises(ValueError):
            FaultScript(failure_rate=1.5)
        with pytest.raises(ValueError):
            FaultScript(latency_spike_rate=-0.1)

    def test_crash_window_is_half_open(self):
        script = FaultScript(crash_windows=((10, 12),))
        assert script.fault_at("s1", 9, "x") is None
        assert script.fault_at("s1", 10, "x") == "crash"
        assert script.fault_at("s1", 11, "x") == "crash"
        assert script.fault_at("s1", 12, "x") is None

    def test_intermittent_is_deterministic_per_instant(self):
        script = FaultScript(failure_rate=0.4)
        outcomes = [script.fault_at("s1", t, "seed-1") for t in range(100)]
        assert outcomes == [script.fault_at("s1", t, "seed-1") for t in range(100)]
        hits = sum(1 for o in outcomes if o == "intermittent")
        assert 20 <= hits <= 60  # ~40 of 100, deterministic but hash-spread
        # A different seed scripts a different episode.
        assert outcomes != [script.fault_at("s1", t, "seed-2") for t in range(100)]


class TestFaultInjector:
    def test_wrapped_service_keeps_identity(self):
        injector = make_injector(FaultScript())
        wrapped = injector.as_service()
        original = injector.service
        assert wrapped.reference == original.reference
        assert wrapped.prototypes == original.prototypes
        assert wrapped.properties == original.properties

    def test_healthy_instants_pass_through(self):
        injector = make_injector(FaultScript(crash_windows=((10, 20),)))
        registry = ServiceRegistry([injector.as_service()])
        plain = ServiceRegistry([TemperatureSensor("s1", "office").as_service()])
        assert registry.invoke(GET_TEMPERATURE, "s1", {}, 5) == plain.invoke(
            GET_TEMPERATURE, "s1", {}, 5
        )
        assert injector.faults_injected == {}

    def test_crash_window_raises_invocation_error(self):
        injector = make_injector(FaultScript(crash_windows=((10, 20),)))
        registry = ServiceRegistry([injector.as_service()])
        with pytest.raises(InvocationError) as info:
            registry.invoke(GET_TEMPERATURE, "s1", {}, 10)
        assert isinstance(info.value.__cause__, InjectedFault)
        assert injector.faults_injected == {"crash": 1}

    def test_malformed_window_trips_schema_validation(self):
        injector = make_injector(FaultScript(malformed_windows=((3, 4),)))
        registry = ServiceRegistry([injector.as_service()])
        with pytest.raises(InvocationError) as info:
            registry.invoke(GET_TEMPERATURE, "s1", {}, 3)
        assert "invalid output tuple" in str(info.value)
        assert injector.faults_injected == {"malformed": 1}

    def test_latency_spike_faults_as_timeout(self):
        injector = make_injector(FaultScript(latency_spike_rate=1.0))
        registry = ServiceRegistry([injector.as_service()])
        with pytest.raises(InvocationError):
            registry.invoke(GET_TEMPERATURE, "s1", {}, 1)
        assert injector.faults_injected == {"timeout": 1}

    def test_same_instant_same_outcome_regardless_of_attempts(self):
        """Section 3.2: re-invocation at the same instant must behave
        identically — faults depend on the instant, never on call counts."""
        injector = make_injector(FaultScript(failure_rate=0.5), seed=7)
        registry = ServiceRegistry([injector.as_service()])
        for instant in range(30):
            outcomes = []
            for _ in range(3):
                try:
                    registry.invoke(GET_TEMPERATURE, "s1", {}, instant)
                    outcomes.append("ok")
                except InvocationError:
                    outcomes.append("fail")
            assert len(set(outcomes)) == 1
